(** Effects-based cooperative session scheduler: one fiber per
    attestation session, multiplexed over the shard's simulated board.

    The lock-step storm loop steps {e every} launched session once per
    tick — sessions that are long terminal, or merely waiting for bytes
    that have not arrived, all pay a call. This scheduler keeps only
    live fibers and wakes a blocked one exactly when its wait condition
    can observe something: {!await_frame} parks the fiber until its
    connection has a complete frame (or stream end / violation — see
    {!Watz_tz.Net.frame_ready}) or its retransmission deadline expires
    on the {e simulated} clock.

    Determinism contract (DESIGN.md §9): no wall-clock anywhere; the
    run queue is ordered by fiber id (the attester session id), wake
    conditions are evaluated against the simulated board only, and
    {!run_tick} resumes each due fiber at most once per tick in
    ascending id order — exactly the order the lock-step loop steps
    sessions. A fixed-seed storm therefore performs the identical
    sequence of observable actions (sends, protocol calls, clock
    charges) under either scheduler, which is what makes the two
    [--sched] modes byte-identical in their merged metrics and trace
    (pinned by [test_fleet.ml]).

    Effects use [Effect.Deep]: the handler installed when a fiber first
    runs is captured inside its continuation, so resuming after a park
    re-enters the same handler. Continuations are one-shot and the
    scheduler is single-domain (each fleet shard owns one). *)

type _ Effect.t +=
  | Await_tick : unit Effect.t
  | Await_frame : { ready : unit -> bool; deadline_ns : int64 } -> unit Effect.t

(** Park until the next tick. *)
let await_tick () = Effect.perform Await_tick

(** Park until [ready ()] holds or the simulated clock reaches
    [deadline_ns], whichever a tick observes first. [ready] must be an
    observation-free poll (it may run any number of times). *)
let await_frame ~ready ~deadline_ns = Effect.perform (Await_frame { ready; deadline_ns })

type park =
  | Runnable (* freshly spawned or woken by [Await_tick] *)
  | Waiting of { ready : unit -> bool; deadline_ns : int64 }
  | Finished

type resume = Not_started of (unit -> unit) | Paused of (unit, unit) Effect.Deep.continuation

type fiber = { fid : int; mutable park : park; mutable resume : resume option }

type t = {
  now : unit -> int64; (* the shard's simulated clock *)
  mutable fibers : fiber list; (* descending spawn order; reversed per tick *)
  mutable live : int;
  mutable peak_live : int;
}

let create ~now () = { now; fibers = []; live = 0; peak_live = 0 }

(** Register a fiber. [body] does not run yet: it is first resumed by
    the next {!run_tick}, so a session launched at the top of a tick is
    stepped at the same point of the tick as under the lock-step loop.
    Ids must be unique and spawned in ascending order (the storm's
    launch order is). *)
let spawn t ~fid body =
  t.fibers <- { fid; park = Runnable; resume = Some (Not_started body) } :: t.fibers;
  t.live <- t.live + 1;
  if t.live > t.peak_live then t.peak_live <- t.live

let live t = t.live
let peak_live t = t.peak_live

let handler t f =
  {
    Effect.Deep.retc =
      (fun () ->
        f.park <- Finished;
        t.live <- t.live - 1);
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Await_tick ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              f.park <- Runnable;
              f.resume <- Some (Paused k))
        | Await_frame { ready; deadline_ns } ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              f.park <- Waiting { ready; deadline_ns };
              f.resume <- Some (Paused k))
        | _ -> None);
  }

let resume_fiber t f =
  match f.resume with
  | None -> ()
  | Some r -> (
    f.resume <- None;
    match r with
    | Not_started body -> Effect.Deep.match_with body () (handler t f)
    | Paused k -> Effect.Deep.continue k ())

(** One scheduling quantum: walk the fibers in ascending fiber id and
    resume each due one — runnable, or waiting with [ready ()] true or
    the deadline reached. Each wake condition is evaluated at the
    fiber's turn, not against a start-of-tick snapshot: protocol work
    charges the simulated clock mid-tick (every [Soc.smc] call does),
    so a session stepped later in the tick can see a deadline that
    crossed because of an earlier session's charges — exactly what the
    lock-step loop's per-session deadline check observes. A fiber that
    is not resumed charges nothing, matching the lock-step no-op step.
    Finished fibers are dropped from the registry. *)
let run_tick t =
  let fibers = List.sort (fun a b -> compare a.fid b.fid) t.fibers in
  List.iter
    (fun f ->
      let due =
        match f.park with
        | Runnable -> true
        | Waiting { ready; deadline_ns } ->
          ready () || Int64.compare (t.now ()) deadline_ns >= 0
        | Finished -> false
      in
      if due then resume_fiber t f)
    fibers;
  let finished f = match f.park with Finished -> true | _ -> false in
  if List.exists finished t.fibers then
    t.fibers <- List.filter (fun f -> not (finished f)) t.fibers

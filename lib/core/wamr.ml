(** The normal-world baseline runtime — the paper's stock WAMR.

    Runs exactly the same Wasm binaries as {!Runtime}, with WASI bound
    to rich-OS facilities: no world switches, no shared-memory staging,
    no measurement, no attestation. Benchmarks compare this against
    WaTZ to show the TEE adds no execution-speed penalty (Figs. 5/6/8).

    Like the trusted runtime it accepts an execution tier, which is how
    the §III interpreter-vs-AOT ablation (and the new fast-interpreter
    point in between) is driven. *)

module Wasi = Watz_wasi.Wasi

type app = {
  tier : Engine.tier;
  instance : Engine.instance;
  wasi_env : Wasi.env;
  output : Buffer.t;
  startup_ns : float;
}

exception App_trap of string

(** Load and optionally run [_start] in the normal world. *)
let load ?(tier = Engine.Aot) ?(args = [ "app.wasm" ]) ?(entry = Some "_start") soc wasm_bytes =
  let t0 = Unix.gettimeofday () in
  let output = Buffer.create 256 in
  let rng = Watz_util.Prng.create 0x77414d52L in
  let wasi_env =
    Wasi.make_env ~args
      ~clock_ns:(fun () -> Watz_tz.Soc.normal_world_clock_ns soc)
      ~random:(Watz_util.Prng.bytes rng)
      ~write_out:(Buffer.add_string output) ()
  in
  let prepared = Engine.prepare tier wasm_bytes in
  let instance = Engine.instantiate ~wasi_env prepared in
  (match entry with
  | None -> ()
  | Some name -> (
    try ignore (Engine.invoke_opt instance name [])
    with Wasi.Proc_exit code -> wasi_env.Wasi.exit_code <- Some code));
  let startup_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  { tier; instance; wasi_env; output; startup_ns }

let invoke app name args =
  try Engine.invoke app.instance name args with
  | Watz_wasm.Instance.Trap m -> raise (App_trap m)
  | Not_found -> raise (App_trap ("no export " ^ name))

let output app = Buffer.contents app.output

(** The app's exported linear memory, if any. *)
let export_memory app = Engine.export_memory app.instance

(** MiniC: a small imperative language compiled to WebAssembly.

    This is the toolchain substitute for WASI-SDK/Clang in the paper's
    pipeline: benchmark kernels (PolyBench, the Speedtest experiments,
    the Genann network) are written once in MiniC and compiled to the
    same Wasm opcodes a C compiler would emit — structured loops,
    manual address arithmetic over linear memory, i32 induction
    variables and f64 data.

    Programs are built with OCaml combinators (see {!Dsl}); there is no
    surface syntax. [compile] type-checks and emits an {!Ast.module_}
    ready for {!Watz_wasm.Validate} / {!Watz_wasm.Encode}. *)

module W = Watz_wasm.Ast
module T = Watz_wasm.Types
module B = Watz_wasm.Builder

type ty = I32 | I64 | F32 | F64

let valtype_of_ty = function
  | I32 -> T.I32
  | I64 -> T.I64
  | F32 -> T.F32
  | F64 -> T.F64

type binop = Add | Sub | Mul | Div | Rem | BAnd | BOr | BXor | Shl | Shr | ShrU
type cmpop = Eq | Ne | Lt | Le | Gt | Ge
type width = W8 | W16 | W32 | W64

type expr =
  | IntE of int (* i32 constant *)
  | LongE of int64
  | FloatE of float (* f64 constant *)
  | Float32E of float
  | VarE of string
  | BinE of binop * expr * expr
  | NegE of expr
  | SqrtE of expr
  | AbsE of expr
  | MinE of expr * expr
  | MaxE of expr * expr
  | CmpE of cmpop * expr * expr (* i32 0/1 *)
  | AndE of expr * expr (* logical, short-circuit *)
  | OrE of expr * expr
  | NotE of expr
  | CastE of ty * expr
  | LoadE of ty * expr (* full-width load at byte address *)
  | LoadPackedE of width * bool (* signed *) * expr (* i32 result *)
  | CallE of string * expr list
  | TernE of expr * expr * expr
  | MemSizeE
  | MemGrowE of expr

type stmt =
  | DeclS of string * ty * expr option
  | AssignS of string * expr
  | StoreS of ty * expr * expr (* ty, address, value *)
  | StorePackedS of width * expr * expr
  | IfS of expr * stmt list * stmt list
  | WhileS of expr * stmt list
  | ForS of string * expr * expr * stmt list
      (* for (var = lo; var < hi; var++) body — i32 induction *)
  | ReturnS of expr option
  | ExprS of expr
  | BreakS
  | ContinueS

type import_decl = { i_module : string; i_name : string; i_params : ty list; i_ret : ty option }

type fundef = {
  f_name : string;
  f_params : (string * ty) list;
  f_ret : ty option;
  f_body : stmt list;
  f_export : bool;
}

type program = {
  p_imports : import_decl list;
  p_funs : fundef list;
  p_mem_pages : int;
  p_mem_max : int option;
  p_data : (int * string) list;
  p_export_memory : bool;
}

exception Type_error of string

let type_fail fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Compilation *)

type fenv = {
  fidx : int;
  fparams : ty list;
  fret : ty option;
}

type cenv = {
  funs : (string, fenv) Hashtbl.t;
  locals : (string, int * ty) Hashtbl.t;
  mutable local_list : T.valtype list; (* declared locals beyond params, reversed *)
  mutable next_local : int;
  ret : ty option;
  (* Loop context: absolute label level of (exit block, continue block)
     for each enclosing loop, innermost first. *)
  mutable loops : (int * int) list;
  mutable level : int; (* current label nesting depth *)
}

let fresh_local env name ty =
  if Hashtbl.mem env.locals name then type_fail "duplicate variable %s" name;
  let idx = env.next_local in
  env.next_local <- idx + 1;
  env.local_list <- valtype_of_ty ty :: env.local_list;
  Hashtbl.replace env.locals name (idx, ty);
  (idx, ty)

(* Loop induction variables may be reused across sibling loops, C
   style; a conflicting type is still an error. *)
let reuse_or_fresh_local env name ty =
  match Hashtbl.find_opt env.locals name with
  | Some (idx, ty') ->
    if ty <> ty' then type_fail "loop variable %s reused at a different type" name;
    (idx, ty)
  | None -> fresh_local env name ty

let lookup_var env name =
  match Hashtbl.find_opt env.locals name with
  | Some v -> v
  | None -> type_fail "unbound variable %s" name

let lookup_fun env name =
  match Hashtbl.find_opt env.funs name with
  | Some f -> f
  | None -> type_fail "unbound function %s" name

let is_float = function F32 | F64 -> true | I32 | I64 -> false

(* Each expression compiles to (instructions, type). *)
let rec compile_expr env (e : expr) : W.instr list * ty =
  match e with
  | IntE n -> ([ W.Const (W.VI32 (Int32.of_int n)) ], I32)
  | LongE n -> ([ W.Const (W.VI64 n) ], I64)
  | FloatE x -> ([ W.Const (W.VF64 x) ], F64)
  | Float32E x -> ([ W.Const (W.VF32 x) ], F32)
  | VarE name ->
    let idx, ty = lookup_var env name in
    ([ W.LocalGet idx ], ty)
  | BinE (op, a, b) ->
    let ca, ta = compile_expr env a in
    let cb, tb = compile_expr env b in
    if ta <> tb then type_fail "binop operand types differ (%s)" (show_ty ta ^ "/" ^ show_ty tb);
    let instr =
      if is_float ta then
        let fop =
          match op with
          | Add -> W.Fadd
          | Sub -> W.Fsub
          | Mul -> W.Fmul
          | Div -> W.Fdiv
          | Rem | BAnd | BOr | BXor | Shl | Shr | ShrU -> type_fail "float bitwise/rem"
        in
        W.FBinop (valtype_of_ty ta, fop)
      else
        let iop =
          match op with
          | Add -> W.Add
          | Sub -> W.Sub
          | Mul -> W.Mul
          | Div -> W.DivS
          | Rem -> W.RemS
          | BAnd -> W.And
          | BOr -> W.Or
          | BXor -> W.Xor
          | Shl -> W.Shl
          | Shr -> W.ShrS
          | ShrU -> W.ShrU
        in
        W.IBinop (valtype_of_ty ta, iop)
    in
    (ca @ cb @ [ instr ], ta)
  | NegE a ->
    let ca, ta = compile_expr env a in
    if is_float ta then (ca @ [ W.FUnop (valtype_of_ty ta, W.Neg) ], ta)
    else if ta = I32 then ([ W.Const (W.VI32 0l) ] @ ca @ [ W.IBinop (T.I32, W.Sub) ], I32)
    else ([ W.Const (W.VI64 0L) ] @ ca @ [ W.IBinop (T.I64, W.Sub) ], I64)
  | SqrtE a ->
    let ca, ta = compile_expr env a in
    if not (is_float ta) then type_fail "sqrt of integer";
    (ca @ [ W.FUnop (valtype_of_ty ta, W.Sqrt) ], ta)
  | AbsE a ->
    let ca, ta = compile_expr env a in
    if not (is_float ta) then type_fail "abs of integer (use bit tricks)";
    (ca @ [ W.FUnop (valtype_of_ty ta, W.Abs) ], ta)
  | MinE (a, b) | MaxE (a, b) ->
    let ca, ta = compile_expr env a in
    let cb, tb = compile_expr env b in
    if ta <> tb || not (is_float ta) then type_fail "min/max need matching float operands";
    let op = match e with MinE _ -> W.Fmin | _ -> W.Fmax in
    (ca @ cb @ [ W.FBinop (valtype_of_ty ta, op) ], ta)
  | CmpE (op, a, b) ->
    let ca, ta = compile_expr env a in
    let cb, tb = compile_expr env b in
    if ta <> tb then type_fail "comparison operand types differ";
    let instr =
      if is_float ta then
        let fop =
          match op with
          | Eq -> W.Feq
          | Ne -> W.Fne
          | Lt -> W.Flt
          | Le -> W.Fle
          | Gt -> W.Fgt
          | Ge -> W.Fge
        in
        W.FRelop (valtype_of_ty ta, fop)
      else
        let iop =
          match op with
          | Eq -> W.Eq
          | Ne -> W.Ne
          | Lt -> W.LtS
          | Le -> W.LeS
          | Gt -> W.GtS
          | Ge -> W.GeS
        in
        W.IRelop (valtype_of_ty ta, iop)
    in
    (ca @ cb @ [ instr ], I32)
  | AndE (a, b) ->
    let ca, ta = compile_expr env a in
    let cb, tb = compile_expr env b in
    if ta <> I32 || tb <> I32 then type_fail "logical and needs i32 operands";
    (ca @ [ W.If (W.BlockVal T.I32, cb @ [ W.Const (W.VI32 0l); W.IRelop (T.I32, W.Ne) ],
                  [ W.Const (W.VI32 0l) ]) ], I32)
  | OrE (a, b) ->
    let ca, ta = compile_expr env a in
    let cb, tb = compile_expr env b in
    if ta <> I32 || tb <> I32 then type_fail "logical or needs i32 operands";
    (ca @ [ W.If (W.BlockVal T.I32, [ W.Const (W.VI32 1l) ],
                  cb @ [ W.Const (W.VI32 0l); W.IRelop (T.I32, W.Ne) ]) ], I32)
  | NotE a ->
    let ca, ta = compile_expr env a in
    if ta <> I32 then type_fail "logical not needs i32";
    (ca @ [ W.ITestop T.I32 ], I32)
  | CastE (dst, a) ->
    let ca, src = compile_expr env a in
    if src = dst then (ca, dst)
    else
      let cvt =
        match (src, dst) with
        | I32, I64 -> W.I64ExtendI32S
        | I64, I32 -> W.I32WrapI64
        | I32, F64 -> W.F64ConvertI32S
        | I32, F32 -> W.F32ConvertI32S
        | I64, F64 -> W.F64ConvertI64S
        | I64, F32 -> W.F32ConvertI64S
        | F64, I32 -> W.I32TruncF64S
        | F32, I32 -> W.I32TruncF32S
        | F64, I64 -> W.I64TruncF64S
        | F32, I64 -> W.I64TruncF32S
        | F32, F64 -> W.F64PromoteF32
        | F64, F32 -> W.F32DemoteF64
        | (I32 | I64 | F32 | F64), _ -> assert false
      in
      (ca @ [ W.Cvtop cvt ], dst)
  | LoadE (ty, addr) ->
    let ca, ta = compile_expr env addr in
    if ta <> I32 then type_fail "address must be i32";
    let align = match ty with I32 | F32 -> 2 | I64 | F64 -> 3 in
    (ca @ [ W.Load (valtype_of_ty ty, None, { align; offset = 0 }) ], ty)
  | LoadPackedE (w, signed, addr) ->
    let ca, ta = compile_expr env addr in
    if ta <> I32 then type_fail "address must be i32";
    let pack, align =
      match w with W8 -> (W.P8, 0) | W16 -> (W.P16, 1) | W32 | W64 -> type_fail "packed 32/64"
    in
    let ext = if signed then W.SX else W.ZX in
    (ca @ [ W.Load (T.I32, Some (pack, ext), { align; offset = 0 }) ], I32)
  | CallE (name, args) ->
    let f = lookup_fun env name in
    if List.length args <> List.length f.fparams then
      type_fail "call %s: expected %d arguments, got %d" name (List.length f.fparams)
        (List.length args);
    let compiled =
      List.map2
        (fun arg expected ->
          let ca, ta = compile_expr env arg in
          if ta <> expected then type_fail "call %s: argument type mismatch" name;
          ca)
        args f.fparams
    in
    let ret = match f.fret with Some t -> t | None -> type_fail "call %s: no result in expression" name in
    (List.concat compiled @ [ W.Call f.fidx ], ret)
  | TernE (c, a, b) ->
    let cc, tc = compile_expr env c in
    if tc <> I32 then type_fail "ternary condition must be i32";
    let ca, ta = compile_expr env a in
    let cb, tb = compile_expr env b in
    if ta <> tb then type_fail "ternary arms differ";
    (cc @ [ W.If (W.BlockVal (valtype_of_ty ta), ca, cb) ], ta)
  | MemSizeE -> ([ W.MemorySize ], I32)
  | MemGrowE a ->
    let ca, ta = compile_expr env a in
    if ta <> I32 then type_fail "memory.grow takes i32";
    (ca @ [ W.MemoryGrow ], I32)

and show_ty = function I32 -> "int" | I64 -> "long" | F32 -> "float" | F64 -> "double"

(* Statements: [level] bookkeeping mirrors the emitted Block/Loop/If
   structure so break/continue resolve to the right label depth. *)
let rec compile_stmt env (s : stmt) : W.instr list =
  match s with
  | DeclS (name, ty, init) ->
    let idx, _ = fresh_local env name ty in
    (match init with
    | None -> []
    | Some e ->
      let ce, te = compile_expr env e in
      if te <> ty then type_fail "initialiser for %s has type %s, expected %s" name (show_ty te) (show_ty ty);
      ce @ [ W.LocalSet idx ])
  | AssignS (name, e) ->
    let idx, ty = lookup_var env name in
    let ce, te = compile_expr env e in
    if te <> ty then type_fail "assignment to %s has type %s, expected %s" name (show_ty te) (show_ty ty);
    ce @ [ W.LocalSet idx ]
  | StoreS (ty, addr, v) ->
    let ca, ta = compile_expr env addr in
    if ta <> I32 then type_fail "store address must be i32";
    let cv, tv = compile_expr env v in
    if tv <> ty then type_fail "store value type mismatch";
    let align = match ty with I32 | F32 -> 2 | I64 | F64 -> 3 in
    ca @ cv @ [ W.Store (valtype_of_ty ty, None, { align; offset = 0 }) ]
  | StorePackedS (w, addr, v) ->
    let ca, ta = compile_expr env addr in
    if ta <> I32 then type_fail "store address must be i32";
    let cv, tv = compile_expr env v in
    if tv <> I32 then type_fail "packed store takes i32 value";
    let pack, align =
      match w with W8 -> (W.P8, 0) | W16 -> (W.P16, 1) | W32 | W64 -> type_fail "packed 32/64"
    in
    ca @ cv @ [ W.Store (T.I32, Some pack, { align; offset = 0 }) ]
  | IfS (c, then_, else_) ->
    let cc, tc = compile_expr env c in
    if tc <> I32 then type_fail "if condition must be i32";
    env.level <- env.level + 1;
    let ct = compile_block env then_ in
    let ce = compile_block env else_ in
    env.level <- env.level - 1;
    cc @ [ W.If (W.BlockEmpty, ct, ce) ]
  | WhileS (c, body) ->
    (* block $exit; loop $top; if !cond br $exit; body; br $top *)
    let exit_level = env.level in
    env.level <- env.level + 2;
    (* inside loop: level = exit_level + 2 *)
    let cont_level = exit_level + 1 in
    env.loops <- (exit_level, cont_level) :: env.loops;
    let cc, tc = compile_expr env c in
    if tc <> I32 then type_fail "while condition must be i32";
    let cbody = compile_block env body in
    env.loops <- List.tl env.loops;
    env.level <- env.level - 2;
    [
      W.Block
        ( W.BlockEmpty,
          [
            W.Loop
              ( W.BlockEmpty,
                cc @ [ W.ITestop T.I32; W.BrIf 1 ] @ cbody @ [ W.Br 0 ] );
          ] );
    ]
  | ForS (var, lo, hi, body) ->
    (* var is declared by the loop; classic i < hi, i++ shape. The
       continue label targets the increment, so the loop is
       block $exit { loop $top { if !(i<hi) br $exit;
         block $cont { body }; i++; br $top } } *)
    let clo, tlo = compile_expr env lo in
    if tlo <> I32 then type_fail "for bound must be i32";
    let idx, _ = reuse_or_fresh_local env var I32 in
    let chi, thi = compile_expr env hi in
    if thi <> I32 then type_fail "for bound must be i32";
    let exit_level = env.level in
    let cont_level = exit_level + 2 in
    env.level <- env.level + 3;
    env.loops <- (exit_level, cont_level) :: env.loops;
    let cbody = compile_block env body in
    env.loops <- List.tl env.loops;
    env.level <- env.level - 3;
    clo
    @ [ W.LocalSet idx ]
    @ [
        W.Block
          ( W.BlockEmpty,
            [
              W.Loop
                ( W.BlockEmpty,
                  [ W.LocalGet idx ] @ chi
                  @ [ W.IRelop (T.I32, W.GeS); W.BrIf 1 ]
                  @ [ W.Block (W.BlockEmpty, cbody) ]
                  @ [
                      W.LocalGet idx;
                      W.Const (W.VI32 1l);
                      W.IBinop (T.I32, W.Add);
                      W.LocalSet idx;
                      W.Br 0;
                    ] );
            ] );
      ]
  | ReturnS e ->
    (match (e, env.ret) with
    | None, None -> [ W.Return ]
    | Some e, Some ty ->
      let ce, te = compile_expr env e in
      if te <> ty then type_fail "return type mismatch";
      ce @ [ W.Return ]
    | None, Some _ -> type_fail "missing return value"
    | Some _, None -> type_fail "returning a value from a void function")
  | ExprS (CallE (name, args)) when (lookup_fun env name).fret = None ->
    (* Void calls never reach compile_expr, which requires a result. *)
    let f = lookup_fun env name in
    if List.length args <> List.length f.fparams then
      type_fail "call %s: expected %d arguments, got %d" name (List.length f.fparams)
        (List.length args);
    let compiled =
      List.map2
        (fun arg expected ->
          let ca, ta = compile_expr env arg in
          if ta <> expected then type_fail "call %s: argument type mismatch" name;
          ca)
        args f.fparams
    in
    List.concat compiled @ [ W.Call f.fidx ]
  | ExprS e ->
    let ce, _ = compile_expr env e in
    ce @ [ W.Drop ]
  | BreakS ->
    (match env.loops with
    | [] -> type_fail "break outside loop"
    | (exit_level, _) :: _ -> [ W.Br (env.level - exit_level - 1) ])
  | ContinueS ->
    (match env.loops with
    | [] -> type_fail "continue outside loop"
    | (_, cont_level) :: _ -> [ W.Br (env.level - cont_level - 1) ])

and compile_block env stmts = List.concat_map (compile_stmt env) stmts

(* Calls in expression position need void-result handling: a CallE to a
   void function in ExprS position is handled above; in any other
   position the type checker rejects it via lookup in compile_expr. *)

let compile (p : program) : W.module_ =
  let b = B.create () in
  let funs : (string, fenv) Hashtbl.t = Hashtbl.create 16 in
  (* Imports first (their indices precede local functions). *)
  List.iteri
    (fun _ (imp : import_decl) ->
      let params = List.map valtype_of_ty imp.i_params in
      let results = match imp.i_ret with None -> [] | Some t -> [ valtype_of_ty t ] in
      let fidx = B.import_func b ~module_:imp.i_module ~name:imp.i_name ~params ~results in
      if Hashtbl.mem funs imp.i_name then type_fail "duplicate function %s" imp.i_name;
      Hashtbl.replace funs imp.i_name { fidx; fparams = imp.i_params; fret = imp.i_ret })
    p.p_imports;
  (* Pre-register local function indices (allows forward references). *)
  let n_imports = List.length p.p_imports in
  List.iteri
    (fun i (f : fundef) ->
      if Hashtbl.mem funs f.f_name then type_fail "duplicate function %s" f.f_name;
      Hashtbl.replace funs f.f_name
        { fidx = n_imports + i; fparams = List.map snd f.f_params; fret = f.f_ret })
    p.p_funs;
  if p.p_mem_pages > 0 then ignore (B.memory b ~min:p.p_mem_pages ?max:p.p_mem_max ());
  List.iter (fun (offset, s) -> B.data b ~memory:0 ~offset s) p.p_data;
  List.iter
    (fun (f : fundef) ->
      let env =
        {
          funs;
          locals = Hashtbl.create 16;
          local_list = [];
          next_local = 0;
          ret = f.f_ret;
          loops = [];
          level = 0;
        }
      in
      List.iter (fun (name, ty) -> ignore (fresh_local env name ty)) f.f_params;
      (* Params are not extra locals. *)
      env.local_list <- [];
      let body = compile_block env f.f_body in
      (* A value-returning function must not fall off the end unless the
         last statement returns; append an unreachable default so
         validation succeeds for bodies ending in Return. *)
      let body =
        match f.f_ret with
        | None -> body
        | Some _ -> body @ [ W.Unreachable ]
      in
      let params = List.map (fun (_, t) -> valtype_of_ty t) f.f_params in
      let results = match f.f_ret with None -> [] | Some t -> [ valtype_of_ty t ] in
      let fidx = B.func b ~params ~results ~locals:(List.rev env.local_list) body in
      assert (fidx = (Hashtbl.find funs f.f_name).fidx);
      if f.f_export then B.export_func b f.f_name fidx)
    p.p_funs;
  if p.p_export_memory && p.p_mem_pages > 0 then B.export_memory b "memory" 0;
  B.build b

(** Compile, validate and encode to .wasm bytes in one step. *)
let compile_to_bytes p =
  let m = compile p in
  Watz_wasm.Validate.validate m;
  Watz_wasm.Encode.encode m

(* ------------------------------------------------------------------ *)
(* Combinator front-end *)

module Dsl = struct
  (** Thin sugar so kernels read naturally. *)

  let i n = IntE n
  let f x = FloatE x
  let v name = VarE name
  let ( + ) a b = BinE (Add, a, b)
  let ( - ) a b = BinE (Sub, a, b)
  let ( * ) a b = BinE (Mul, a, b)
  let ( / ) a b = BinE (Div, a, b)
  let ( % ) a b = BinE (Rem, a, b)
  let ( < ) a b = CmpE (Lt, a, b)
  let ( <= ) a b = CmpE (Le, a, b)
  let ( > ) a b = CmpE (Gt, a, b)
  let ( >= ) a b = CmpE (Ge, a, b)
  let ( = ) a b = CmpE (Eq, a, b)
  let ( <> ) a b = CmpE (Ne, a, b)
  let ( && ) a b = AndE (a, b)
  let ( || ) a b = OrE (a, b)
  let not_ a = NotE a
  let to_f64 e = CastE (F64, e)
  let to_i32 e = CastE (I32, e)

  (** f64 array addressing: element [idx] of the array at byte [base]. *)
  let f64_addr base idx = BinE (Add, BinE (Mul, idx, IntE 8), base)

  let f64_get base idx = LoadE (F64, f64_addr base idx)
  let f64_set base idx value = StoreS (F64, f64_addr base idx, value)

  (** Row-major 2-D addressing with row length [cols]. *)
  let f64_get2 base cols r c = f64_get base (BinE (Add, BinE (Mul, r, cols), c))
  let f64_set2 base cols r c value = f64_set base (BinE (Add, BinE (Mul, r, cols), c)) value

  let i32_addr base idx = BinE (Add, BinE (Mul, idx, IntE 4), base)
  let i32_get base idx = LoadE (I32, i32_addr base idx)
  let i32_set base idx value = StoreS (I32, i32_addr base idx, value)

  let decl name ty e = DeclS (name, ty, Some e)
  let set name e = AssignS (name, e)
  let for_ var lo hi body = ForS (var, lo, hi, body)
  let while_ c body = WhileS (c, body)
  let if_ c t e = IfS (c, t, e)
  let ret e = ReturnS (Some e)
  let ret_void = ReturnS None
  let call name args = ExprS (CallE (name, args))
  let calle name args = CallE (name, args)

  let fn ?(export = true) name params ret body =
    { f_name = name; f_params = params; f_ret = ret; f_body = body; f_export = export }

  let program ?(imports = []) ?(mem_pages = 1) ?mem_max ?(data = []) ?(export_memory = true)
      funs =
    {
      p_imports = imports;
      p_funs = funs;
      p_mem_pages = mem_pages;
      p_mem_max = mem_max;
      p_data = data;
      p_export_memory = export_memory;
    }
end

(* Domain parameters from SEC 2 / FIPS 186-4.

   Point arithmetic runs on the {!Fe256} Montgomery field. Hot paths:
   4-bit windowed scalar multiplication, mixed (Z=1) additions against
   affine tables, a lazily-built fixed-base comb for the generator
   (base_mul is 64 mixed adds and no doublings), and Shamir's trick for
   the u1*G + u2*Q shape of ECDSA verification. Points carry a
   memoized affine window table so long-lived keys (verifier identity,
   endorsed attestation keys) pay table setup once across sessions. *)

let p = Bn.of_hex "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"
let n = Bn.of_hex "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"
let b_coeff = Bn.of_hex "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b"
let gx = Bn.of_hex "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"
let gy = Bn.of_hex "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"
let field = Modring.create p
let order = Modring.create n
let field_ring = Fe256.create p
let scalar_ring = Fe256.create n

module Fe = Fe256

let fp = field_ring
let fadd = Fe.add fp
let fsub = Fe.sub fp
let fmul = Fe.mul fp
let fsqr = Fe.sqr fp

let fe_a = Fe.of_bn fp (Bn.sub p (Bn.of_int 3)) (* a = -3 mod p *)
let fe_b = Fe.of_bn fp b_coeff

(* An affine point in Montgomery form; never the point at infinity. *)
type affine = { ax : Fe.t; ay : Fe.t }

(* Jacobian coordinates: (X, Y, Z) represents (X/Z^2, Y/Z^3); Z = 0 is
   the point at infinity. [memo] caches the [1..15]P affine window
   table for this exact point value; [enc] caches the uncompressed
   SEC 1 encoding (each fresh encode costs a field inversion, and
   session keys are encoded several times per protocol run). *)
type point = {
  x : Fe.t;
  y : Fe.t;
  z : Fe.t;
  mutable memo : affine array option;
  mutable enc : string option;
  mutable comb_memo : affine array array option;
      (* per-point comb (same shape as the generator's): position j
         holds [1..15] * 16^j * P, affine — built on demand for keys
         that verify many signatures (see {!prepare_comb}). *)
}

let jac x y z = { x; y; z; memo = None; enc = None; comb_memo = None }
let infinity = jac (Fe.one fp) (Fe.one fp) (Fe.zero fp)
let is_infinity pt = Fe.is_zero pt.z

let on_curve_fe x y =
  let lhs = fsqr y in
  let rhs = fadd (fmul (fsqr x) x) (fadd (fmul fe_a x) fe_b) in
  Fe.equal lhs rhs

let on_curve x y =
  if Bn.compare x p >= 0 || Bn.compare y p >= 0 then false
  else on_curve_fe (Fe.of_bn fp x) (Fe.of_bn fp y)

let of_affine x y =
  if not (on_curve x y) then invalid_arg "P256.of_affine: point not on curve";
  jac (Fe.of_bn fp x) (Fe.of_bn fp y) (Fe.one fp)

let base = jac (Fe.of_bn fp gx) (Fe.of_bn fp gy) (Fe.one fp)

let to_affine_fe pt =
  if is_infinity pt then None
  else if Fe.equal pt.z (Fe.one fp) then Some { ax = pt.x; ay = pt.y }
  else begin
    let zinv = Fe.inv fp pt.z in
    let zinv2 = fsqr zinv in
    Some { ax = fmul pt.x zinv2; ay = fmul pt.y (fmul zinv2 zinv) }
  end

let to_affine pt =
  match to_affine_fe pt with
  | None -> None
  | Some a -> Some (Fe.to_bn fp a.ax, Fe.to_bn fp a.ay)

(* dbl-2001-b: Jacobian doubling for a = -3; small-constant products
   are addition chains (3M + 5S, no generic constant muls). *)
let double pt =
  if is_infinity pt || Fe.is_zero pt.y then infinity
  else begin
    let delta = fsqr pt.z in
    let gamma = fsqr pt.y in
    let beta = fmul pt.x gamma in
    let t = fmul (fsub pt.x delta) (fadd pt.x delta) in
    let alpha = fadd (fadd t t) t in
    let beta2 = fadd beta beta in
    let beta4 = fadd beta2 beta2 in
    let x3 = fsub (fsqr alpha) (fadd beta4 beta4) in
    let z3 = fsub (fsqr (fadd pt.y pt.z)) (fadd gamma delta) in
    let g2 = fsqr gamma in
    let g4 = fadd g2 g2 in
    let g8 = fadd g4 g4 in
    let y3 = fsub (fmul alpha (fsub beta4 x3)) (fadd g8 g8) in
    jac x3 y3 z3
  end

(* add-2007-bl, with the equal/opposite special cases dispatched. *)
let add p1 p2 =
  if is_infinity p1 then p2
  else if is_infinity p2 then p1
  else begin
    let z1z1 = fsqr p1.z in
    let z2z2 = fsqr p2.z in
    let u1 = fmul p1.x z2z2 in
    let u2 = fmul p2.x z1z1 in
    let s1 = fmul p1.y (fmul z2z2 p2.z) in
    let s2 = fmul p2.y (fmul z1z1 p1.z) in
    if Fe.equal u1 u2 then if Fe.equal s1 s2 then double p1 else infinity
    else begin
      let h = fsub u2 u1 in
      let h2 = fadd h h in
      let i = fsqr h2 in
      let j = fmul h i in
      let sd = fsub s2 s1 in
      let r = fadd sd sd in
      let v = fmul u1 i in
      let x3 = fsub (fsub (fsqr r) j) (fadd v v) in
      let s1j = fmul s1 j in
      let y3 = fsub (fmul r (fsub v x3)) (fadd s1j s1j) in
      let z3 = fmul h (fsub (fsqr (fadd p1.z p2.z)) (fadd z1z1 z2z2)) in
      jac x3 y3 z3
    end
  end

(* Mixed addition (madd-2007-bl): the second operand is affine (Z = 1),
   saving ~5 field products over the general add. *)
let add_affine p1 a =
  if is_infinity p1 then jac a.ax a.ay (Fe.one fp)
  else begin
    let z1z1 = fsqr p1.z in
    let u2 = fmul a.ax z1z1 in
    let s2 = fmul a.ay (fmul p1.z z1z1) in
    if Fe.equal p1.x u2 then
      if Fe.equal p1.y s2 then double p1 else infinity
    else begin
      let h = fsub u2 p1.x in
      let hh = fsqr h in
      let hh2 = fadd hh hh in
      let i = fadd hh2 hh2 in
      let j = fmul h i in
      let sd = fsub s2 p1.y in
      let r = fadd sd sd in
      let v = fmul p1.x i in
      let x3 = fsub (fsub (fsqr r) j) (fadd v v) in
      let yj = fmul p1.y j in
      let y3 = fsub (fmul r (fsub v x3)) (fadd yj yj) in
      let z3 = fsub (fsqr (fadd p1.z h)) (fadd z1z1 hh) in
      jac x3 y3 z3
    end
  end

(* Montgomery's batch-inversion trick: one field inversion for a whole
   table of Jacobian points (none may be infinity). *)
let batch_to_affine pts =
  let k = Array.length pts in
  let prefix = Array.make k (Fe.one fp) in
  let acc = ref (Fe.one fp) in
  for i = 0 to k - 1 do
    prefix.(i) <- !acc;
    acc := fmul !acc pts.(i).z
  done;
  let inv = ref (Fe.inv fp !acc) in
  let out = Array.make k { ax = Fe.zero fp; ay = Fe.zero fp } in
  for i = k - 1 downto 0 do
    let zinv = fmul !inv prefix.(i) in
    inv := fmul !inv pts.(i).z;
    let zinv2 = fsqr zinv in
    out.(i) <- { ax = fmul pts.(i).x zinv2; ay = fmul pts.(i).y (fmul zinv2 zinv) }
  done;
  out

(* The [1..15]P affine window table, memoized on the point. *)
let window_table pt =
  match pt.memo with
  | Some tbl -> tbl
  | None ->
      let jtbl = Array.make 15 pt in
      for d = 1 to 14 do
        jtbl.(d) <- add jtbl.(d - 1) pt
      done;
      let tbl = batch_to_affine jtbl in
      pt.memo <- Some tbl;
      tbl

let prepare pt = if not (is_infinity pt) then ignore (window_table pt)

(* Scalars as 64 big-endian nibbles; index 0 is the most significant. *)
let scalar_nibbles k = Bn.to_bytes_be ~len:32 (Bn.mod_ k n)

let nibble s i =
  let b = Char.code (String.unsafe_get s (i lsr 1)) in
  if i land 1 = 0 then b lsr 4 else b land 0xf

let mul k pt =
  if is_infinity pt then infinity
  else begin
    let s = scalar_nibbles k in
    let tbl = window_table pt in
    let acc = ref infinity in
    for i = 0 to 63 do
      if not (is_infinity !acc) then begin
        acc := double !acc;
        acc := double !acc;
        acc := double !acc;
        acc := double !acc
      end;
      let d = nibble s i in
      if d > 0 then acc := add_affine !acc tbl.(d - 1)
    done;
    !acc
  end

(* Fixed-base comb: position j holds [1..15] * 16^j * G, affine. Built
   lazily (one-time ~5 ms) and batch-inverted in a single pass; after
   that base_mul is at most 64 mixed additions and zero doublings.

   The cell is [Atomic] because the comb is the one lazy table shared
   by every fleet domain: the atomic store publishes the fully-built
   (and thereafter immutable) arrays, so a reader either sees [None]
   and builds its own, or sees a complete comb. Concurrent builders
   race benignly — the construction is deterministic, so whichever
   store lands last publishes the same table the loser computed. *)
let comb = Atomic.make None

let get_comb () =
  match Atomic.get comb with
  | Some c -> c
  | None ->
      let jrows = Array.make 64 [||] in
      let pj = ref base in
      for j = 0 to 63 do
        let row = Array.make 15 !pj in
        for d = 1 to 14 do
          row.(d) <- add row.(d - 1) !pj
        done;
        jrows.(j) <- row;
        if j < 63 then pj := double (double (double (double !pj)))
      done;
      let flat = Array.concat (Array.to_list jrows) in
      let affine = batch_to_affine flat in
      let c = Array.init 64 (fun j -> Array.sub affine (j * 15) 15) in
      Atomic.set comb (Some c);
      c

let base_mul k =
  let s = scalar_nibbles k in
  let c = get_comb () in
  let acc = ref infinity in
  for i = 0 to 63 do
    let d = nibble s i in
    (* nibble index i has significance 63 - i *)
    if d > 0 then acc := add_affine !acc c.(63 - i).(d - 1)
  done;
  !acc

(* Shamir/Straus interleaving for u1*G + u2*Q: one shared doubling
   ladder, window adds from the generator comb's position-0 table and
   from Q's memoized table. This is the ECDSA-verify workhorse. *)
let double_mul u1 u2 q =
  let s1 = scalar_nibbles u1 in
  let s2 = scalar_nibbles u2 in
  let gtbl = (get_comb ()).(0) in
  let qtbl = if is_infinity q then [||] else window_table q in
  let acc = ref infinity in
  for i = 0 to 63 do
    if not (is_infinity !acc) then begin
      acc := double !acc;
      acc := double !acc;
      acc := double !acc;
      acc := double !acc
    end;
    let d1 = nibble s1 i in
    if d1 > 0 then acc := add_affine !acc gtbl.(d1 - 1);
    let d2 = nibble s2 i in
    if d2 > 0 && Array.length qtbl > 0 then acc := add_affine !acc qtbl.(d2 - 1)
  done;
  !acc

(* The per-point comb, memoized like the window table but covering all
   64 nibble positions: [1..15] * 16^j * P for j = 0..63, affine. All
   scalars d * 16^j stay below n (15 * 16^63 < n), so no row entry is
   ever infinity and the single batch inversion is safe. Costs roughly
   three double_mul calls to build; every comb-based double-scalar
   multiplication after that drops all 252 ladder doublings. *)
let point_comb pt =
  match pt.comb_memo with
  | Some c -> c
  | None ->
      let jrows = Array.make 64 [||] in
      let pj = ref pt in
      for j = 0 to 63 do
        let row = Array.make 15 !pj in
        for d = 1 to 14 do
          row.(d) <- add row.(d - 1) !pj
        done;
        jrows.(j) <- row;
        if j < 63 then pj := double (double (double (double !pj)))
      done;
      let flat = Array.concat (Array.to_list jrows) in
      let affine = batch_to_affine flat in
      let c = Array.init 64 (fun j -> Array.sub affine (j * 15) 15) in
      pt.comb_memo <- Some c;
      c

let prepare_comb pt = if not (is_infinity pt) then ignore (point_comb pt)

(* u1*G + u2*Q with both scalars walking combs: at most 128 mixed
   additions and zero doublings. Needs Q's comb (built on first use);
   profitable once a key verifies more than a couple of signatures. *)
let comb_double_mul u1 u2 q =
  let s1 = scalar_nibbles u1 in
  let s2 = scalar_nibbles u2 in
  let gc = get_comb () in
  let qc = point_comb q in
  let acc = ref infinity in
  for i = 0 to 63 do
    let d1 = nibble s1 i in
    if d1 > 0 then acc := add_affine !acc gc.(63 - i).(d1 - 1);
    let d2 = nibble s2 i in
    if d2 > 0 then acc := add_affine !acc qc.(63 - i).(d2 - 1)
  done;
  !acc

(* Batched ECDSA-verify shape: every entry computed doubling-free on
   the combs, then one shared Montgomery batch inversion normalises all
   finite results (amortising the one field inversion a per-signature
   to_affine would pay each). Entries yielding infinity map to None. *)
let double_mul_batch entries =
  let k = Array.length entries in
  let results =
    Array.map
      (fun (u1, u2, q) -> if is_infinity q then double_mul u1 u2 q else comb_double_mul u1 u2 q)
      entries
  in
  let finite = Array.of_list (List.filter (fun p -> not (is_infinity p)) (Array.to_list results)) in
  let affines = batch_to_affine finite in
  let out = Array.make k None in
  let j = ref 0 in
  for i = 0 to k - 1 do
    if not (is_infinity results.(i)) then begin
      let a = affines.(!j) in
      incr j;
      out.(i) <- Some (Fe.to_bn fp a.ax, Fe.to_bn fp a.ay)
    end
  done;
  out

(* Cross-multiplied comparison: x1*z2^2 = x2*z1^2 (and same for y with
   cubes) avoids any inversion. *)
let equal p1 p2 =
  match (is_infinity p1, is_infinity p2) with
  | true, true -> true
  | true, false | false, true -> false
  | false, false ->
      let z1z1 = fsqr p1.z in
      let z2z2 = fsqr p2.z in
      Fe.equal (fmul p1.x z2z2) (fmul p2.x z1z1)
      && Fe.equal (fmul p1.y (fmul z2z2 p2.z)) (fmul p2.y (fmul z1z1 p1.z))

let encode pt =
  match pt.enc with
  | Some s -> s
  | None -> (
    match to_affine pt with
    | None -> invalid_arg "P256.encode: point at infinity"
    | Some (x, y) ->
      let s = "\x04" ^ Bn.to_bytes_be ~len:32 x ^ Bn.to_bytes_be ~len:32 y in
      pt.enc <- Some s;
      s)

let decode s =
  if String.length s <> 65 || s.[0] <> '\x04' then None
  else begin
    let x = Bn.of_bytes_be (String.sub s 1 32) in
    let y = Bn.of_bytes_be (String.sub s 33 32) in
    if on_curve x y then begin
      (* a decoded point re-encodes to its own input for free *)
      let pt = jac (Fe.of_bn fp x) (Fe.of_bn fp y) (Fe.one fp) in
      pt.enc <- Some s;
      Some pt
    end
    else None
  end

(* Force the one-time lazy tables (the fixed-base comb) so a server's
   first session does not pay their construction inside its latency. *)
let prewarm () = ignore (get_comb ())

(* HMAC-SHA-256 with prepared keys: the ipad/opad blocks are hashed
   once into a pair of saved SHA-256 states, so each MAC is two state
   restores and the message/digest compresses — no pad re-derivation
   or key copying per call. *)

let block_size = 64

type key = { ictx : Sha256.ctx; octx : Sha256.ctx }

let prepare k =
  let k = if String.length k > block_size then Sha256.digest k else k in
  let klen = String.length k in
  let pad = Bytes.make block_size '\x36' in
  for i = 0 to klen - 1 do
    Bytes.unsafe_set pad i (Char.unsafe_chr (Char.code k.[i] lxor 0x36))
  done;
  let ictx = Sha256.init () in
  Sha256.update_bytes ictx pad 0 block_size;
  for i = 0 to block_size - 1 do
    (* 0x36 lxor 0x5c = 0x6a flips ipad bytes to opad in place *)
    Bytes.unsafe_set pad i (Char.unsafe_chr (Char.code (Bytes.unsafe_get pad i) lxor 0x6a))
  done;
  let octx = Sha256.init () in
  Sha256.update_bytes octx pad 0 block_size;
  { ictx; octx }

(* Domain-local scratch (fleet shards MAC concurrently), fetched once
   per MAC; within a domain it behaves like Sha256's message
   schedule — reused, never re-allocated. *)
type scratch = { st : Sha256.ctx; inner : Bytes.t }

let scratch_key =
  Domain.DLS.new_key (fun () -> { st = Sha256.init (); inner = Bytes.create 32 })

let mac key msg =
  let { st = scratch; inner } = Domain.DLS.get scratch_key in
  Sha256.blit key.ictx scratch;
  Sha256.update scratch msg;
  Sha256.finalize_into scratch inner 0;
  Sha256.blit key.octx scratch;
  Sha256.update_bytes scratch inner 0 32;
  Sha256.finalize scratch

let sha256 ~key msg = mac (prepare key) msg

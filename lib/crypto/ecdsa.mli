(** ECDSA over P-256 with SHA-256, with deterministic nonces (RFC 6979).

    Deterministic nonces remove the dependency on run-time entropy: the
    simulated device derives its attestation key pair from the hardware
    root of trust and must never sign with a repeated or biased nonce.
    Signatures are encoded as the raw 64-byte [r || s] concatenation. *)

type private_key
type public_key = P256.point

val private_of_bytes : string -> private_key
(** [private_of_bytes d] interprets 32 bytes big-endian; the value is
    reduced into [\[1, n-1\]]. *)

val private_to_bytes : private_key -> string
val public_of_private : private_key -> public_key
val keypair_of_seed : string -> private_key * public_key
(** Derives a key pair from arbitrary seed bytes (via SHA-256 candidate
    generation), the mechanism WaTZ uses to turn the MKVB-seeded Fortuna
    stream into its attestation keys. *)

val sign : private_key -> string -> string
(** [sign key msg] hashes [msg] with SHA-256 and returns the 64-byte
    signature. *)

val sign_digest : private_key -> string -> string
(** Signs a precomputed 32-byte digest. *)

val verify : public_key -> msg:string -> signature:string -> bool
val verify_digest : public_key -> digest:string -> signature:string -> bool

val verify_digest_batch : (public_key * string * string) array -> bool array
(** [verify_digest_batch [| (q, digest, signature); ... |]] verifies a
    whole batch with shared precomputation: one scalar inversion for
    all the [s^-1] (Montgomery's trick), doubling-free double-scalar
    multiplication on each key's memoized comb
    ({!P256.double_mul_batch}), and one shared field inversion to
    normalise the results. Per-signature verdicts — slot [i] is exactly
    [verify_digest] of entry [i]; any slot the fast path rejects is
    re-checked individually, so a corrupted signature in the batch
    fails alone and never poisons its neighbours. Keys repeated across
    a batch (the verifier's endorsed devices) amortise their comb. *)

val verify_batch : (public_key * string * string) array -> bool array
(** Like {!verify_digest_batch} over raw messages (hashed first). *)

open Watz_crypto
(** The pre-fast-path crypto, frozen verbatim.

    Reference implementations kept only for differential testing and for
    the [crypto] bench target's old-vs-new speedup measurements: the
    optimized {!Sha256}, {!P256}, {!Ecdsa} and {!Gcm} modules must stay
    bit-identical to these. Nothing in the runtime calls this module. *)

module Sha256 : sig
  type ctx

  val init : unit -> ctx
  val update : ctx -> string -> unit
  val finalize : ctx -> string
  val digest : string -> string
end

val sha256 : string -> string
(** Alias for {!Sha256.digest}. *)

module P256 : sig
  type point = { x : Bn.t; y : Bn.t; z : Bn.t }

  val infinity : point
  val is_infinity : point -> bool
  val base : point
  val on_curve : Bn.t -> Bn.t -> bool
  val to_affine : point -> (Bn.t * Bn.t) option
  val add : point -> point -> point
  val double : point -> point

  val mul : Bn.t -> point -> point
  (** Left-to-right double-and-add, one Modring operation per bit. *)

  val base_mul : Bn.t -> point

  val of_bytes : string -> point option
  (** Parses an uncompressed SEC 1 point (65 bytes). *)
end

module Ecdsa : sig
  val sign : Bn.t -> string -> string
  val sign_digest : Bn.t -> string -> string
  val verify : P256.point -> msg:string -> signature:string -> bool
  val verify_digest : P256.point -> digest:string -> signature:string -> bool
end

module Gcm : sig
  val encrypt : key:string -> iv:string -> ?aad:string -> string -> string * string

  val ghash_bytes : h:string -> string list -> string
  (** Bit-by-bit GHASH over 16-byte-padded parts; [h] is the 16-byte
      hash subkey. Ground truth for the table-driven implementation. *)
end

open Watz_crypto
(* The pre-fast-path crypto, frozen verbatim.

   This module preserves the original textbook implementations — boxed
   Int32 SHA-256, generic Bn/Modring Jacobian P-256 with left-to-right
   double-and-add, reference ECDSA, and the bit-by-bit GHASH — exactly
   as they shipped before the crypto fast path. They exist for two
   reasons only:

   - the differential test suites check that the optimized path is
     bit-identical to these on random inputs, and
   - the `crypto` bench target measures old-vs-new speedups against
     them, so per-PR numbers in BENCH_crypto.json are self-contained.

   Nothing in the runtime calls this module. Do not optimize it. *)

(* ------------------------------------------------------------------ *)
(* SHA-256 over boxed int32 words (FIPS 180-4). *)

module Sha256 = struct
  let k =
    [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl; 0x59f111f1l;
       0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
       0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l;
       0x0fc19dc6l; 0x240ca1ccl; 0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
       0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
       0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
       0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l; 0xa2bfe8a1l; 0xa81a664bl;
       0xc24b8b70l; 0xc76c51a3l; 0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
       0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al;
       0x5b9cca4fl; 0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
       0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

  type ctx = {
    h : int32 array;
    buf : Bytes.t;
    mutable buf_len : int;
    mutable total : int64;
  }

  let init () =
    {
      h =
        [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl; 0x9b05688cl;
           0x1f83d9abl; 0x5be0cd19l |];
      buf = Bytes.create 64;
      buf_len = 0;
      total = 0L;
    }

  let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
  let ( ^^ ) = Int32.logxor
  let ( &&& ) = Int32.logand
  let ( +% ) = Int32.add

  let w = Array.make 64 0l

  let compress ctx block off =
    let get i =
      let b j = Int32.of_int (Char.code (Bytes.unsafe_get block (off + (4 * i) + j))) in
      Int32.logor
        (Int32.shift_left (b 0) 24)
        (Int32.logor (Int32.shift_left (b 1) 16) (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
    in
    for i = 0 to 15 do
      w.(i) <- get i
    done;
    for i = 16 to 63 do
      let s0 = rotr w.(i - 15) 7 ^^ rotr w.(i - 15) 18 ^^ Int32.shift_right_logical w.(i - 15) 3 in
      let s1 = rotr w.(i - 2) 17 ^^ rotr w.(i - 2) 19 ^^ Int32.shift_right_logical w.(i - 2) 10 in
      w.(i) <- w.(i - 16) +% s0 +% w.(i - 7) +% s1
    done;
    let a = ref ctx.h.(0) and b = ref ctx.h.(1) and c = ref ctx.h.(2) and d = ref ctx.h.(3) in
    let e = ref ctx.h.(4) and f = ref ctx.h.(5) and g = ref ctx.h.(6) and hh = ref ctx.h.(7) in
    for i = 0 to 63 do
      let s1 = rotr !e 6 ^^ rotr !e 11 ^^ rotr !e 25 in
      let ch = (!e &&& !f) ^^ (Int32.lognot !e &&& !g) in
      let temp1 = !hh +% s1 +% ch +% k.(i) +% w.(i) in
      let s0 = rotr !a 2 ^^ rotr !a 13 ^^ rotr !a 22 in
      let maj = (!a &&& !b) ^^ (!a &&& !c) ^^ (!b &&& !c) in
      let temp2 = s0 +% maj in
      hh := !g;
      g := !f;
      f := !e;
      e := !d +% temp1;
      d := !c;
      c := !b;
      b := !a;
      a := temp1 +% temp2
    done;
    ctx.h.(0) <- ctx.h.(0) +% !a;
    ctx.h.(1) <- ctx.h.(1) +% !b;
    ctx.h.(2) <- ctx.h.(2) +% !c;
    ctx.h.(3) <- ctx.h.(3) +% !d;
    ctx.h.(4) <- ctx.h.(4) +% !e;
    ctx.h.(5) <- ctx.h.(5) +% !f;
    ctx.h.(6) <- ctx.h.(6) +% !g;
    ctx.h.(7) <- ctx.h.(7) +% !hh

  let update ctx s =
    let len = String.length s in
    ctx.total <- Int64.add ctx.total (Int64.of_int len);
    let pos = ref 0 in
    if ctx.buf_len > 0 then begin
      let take = min (64 - ctx.buf_len) len in
      Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
      ctx.buf_len <- ctx.buf_len + take;
      pos := take;
      if ctx.buf_len = 64 then begin
        compress ctx ctx.buf 0;
        ctx.buf_len <- 0
      end
    end;
    while len - !pos >= 64 do
      compress ctx (Bytes.unsafe_of_string s) !pos;
      pos := !pos + 64
    done;
    let rest = len - !pos in
    if rest > 0 then begin
      Bytes.blit_string s !pos ctx.buf ctx.buf_len rest;
      ctx.buf_len <- ctx.buf_len + rest
    end

  let finalize ctx =
    let bit_len = Int64.mul ctx.total 8L in
    let pad_len =
      let rem = Int64.to_int (Int64.rem ctx.total 64L) in
      if rem < 56 then 56 - rem else 120 - rem
    in
    let pad = Bytes.make (pad_len + 8) '\000' in
    Bytes.set pad 0 '\x80';
    for i = 0 to 7 do
      Bytes.set pad (pad_len + i)
        (Char.chr (Int64.to_int (Int64.shift_right_logical bit_len (8 * (7 - i))) land 0xff))
    done;
    update ctx (Bytes.to_string pad);
    assert (ctx.buf_len = 0);
    String.init 32 (fun i ->
        Char.chr
          (Int32.to_int (Int32.shift_right_logical ctx.h.(i / 4) (8 * (3 - (i mod 4)))) land 0xff))

  let digest s =
    let ctx = init () in
    update ctx s;
    finalize ctx
end

let sha256 = Sha256.digest

(* ------------------------------------------------------------------ *)
(* P-256 over Bn/Modring Jacobian coordinates, double-and-add. *)

module P256 = struct
  let p = Bn.of_hex "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"
  let n = Bn.of_hex "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551"
  let b_coeff = Bn.of_hex "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b"
  let gx = Bn.of_hex "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"
  let gy = Bn.of_hex "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"
  let field = Modring.create p
  let order = Modring.create n
  let a_coeff = Bn.sub p (Bn.of_int 3)

  type point = { x : Bn.t; y : Bn.t; z : Bn.t }

  let infinity = { x = Bn.one; y = Bn.one; z = Bn.zero }
  let is_infinity pt = Bn.is_zero pt.z

  let on_curve x y =
    let f = field in
    if Bn.compare x p >= 0 || Bn.compare y p >= 0 then false
    else
      let lhs = Modring.sqr f y in
      let rhs =
        Modring.add f
          (Modring.mul f (Modring.sqr f x) x)
          (Modring.add f (Modring.mul f a_coeff x) b_coeff)
      in
      Bn.equal lhs rhs

  let base = { x = gx; y = gy; z = Bn.one }

  let to_affine pt =
    if is_infinity pt then None
    else begin
      let f = field in
      let zinv = Modring.inv_prime f pt.z in
      let zinv2 = Modring.sqr f zinv in
      let zinv3 = Modring.mul f zinv2 zinv in
      Some (Modring.mul f pt.x zinv2, Modring.mul f pt.y zinv3)
    end

  let double pt =
    if is_infinity pt || Bn.is_zero pt.y then infinity
    else begin
      let f = field in
      let delta = Modring.sqr f pt.z in
      let gamma = Modring.sqr f pt.y in
      let beta = Modring.mul f pt.x gamma in
      let alpha =
        Modring.mul f (Bn.of_int 3)
          (Modring.mul f (Modring.sub f pt.x delta) (Modring.add f pt.x delta))
      in
      let x3 = Modring.sub f (Modring.sqr f alpha) (Modring.mul f (Bn.of_int 8) beta) in
      let z3 =
        Modring.sub f (Modring.sqr f (Modring.add f pt.y pt.z)) (Modring.add f gamma delta)
      in
      let y3 =
        Modring.sub f
          (Modring.mul f alpha (Modring.sub f (Modring.mul f (Bn.of_int 4) beta) x3))
          (Modring.mul f (Bn.of_int 8) (Modring.sqr f gamma))
      in
      { x = x3; y = y3; z = z3 }
    end

  let add p1 p2 =
    if is_infinity p1 then p2
    else if is_infinity p2 then p1
    else begin
      let f = field in
      let z1z1 = Modring.sqr f p1.z in
      let z2z2 = Modring.sqr f p2.z in
      let u1 = Modring.mul f p1.x z2z2 in
      let u2 = Modring.mul f p2.x z1z1 in
      let s1 = Modring.mul f p1.y (Modring.mul f z2z2 p2.z) in
      let s2 = Modring.mul f p2.y (Modring.mul f z1z1 p1.z) in
      if Bn.equal u1 u2 then
        if Bn.equal s1 s2 then double p1 else infinity
      else begin
        let h = Modring.sub f u2 u1 in
        let i = Modring.sqr f (Modring.mul f (Bn.of_int 2) h) in
        let j = Modring.mul f h i in
        let r = Modring.mul f (Bn.of_int 2) (Modring.sub f s2 s1) in
        let v = Modring.mul f u1 i in
        let x3 =
          Modring.sub f (Modring.sub f (Modring.sqr f r) j) (Modring.mul f (Bn.of_int 2) v)
        in
        let y3 =
          Modring.sub f
            (Modring.mul f r (Modring.sub f v x3))
            (Modring.mul f (Bn.of_int 2) (Modring.mul f s1 j))
        in
        let z3 =
          Modring.mul f h
            (Modring.sub f
               (Modring.sqr f (Modring.add f p1.z p2.z))
               (Bn.add z1z1 z2z2 |> Modring.reduce f))
        in
        { x = x3; y = y3; z = z3 }
      end
    end

  let mul k pt =
    let k = Bn.mod_ k n in
    let bits = Bn.bit_length k in
    let rec go i acc =
      if i < 0 then acc
      else
        let acc = double acc in
        let acc = if Bn.testbit k i then add acc pt else acc in
        go (i - 1) acc
    in
    go (bits - 1) infinity

  let base_mul k = mul k base

  let of_bytes s =
    if String.length s <> 65 || s.[0] <> '\x04' then None
    else begin
      let x = Bn.of_bytes_be (String.sub s 1 32) in
      let y = Bn.of_bytes_be (String.sub s 33 32) in
      if on_curve x y then Some { x; y; z = Bn.one } else None
    end
end

(* ------------------------------------------------------------------ *)
(* Reference ECDSA (RFC 6979 nonces) over the reference curve. *)

module Ecdsa = struct
  let n = P256.n

  let hmac_sha256 ~key msg =
    let block = 64 in
    let key = if String.length key > block then Sha256.digest key else key in
    let pad c =
      String.init block (fun i ->
          let k = if i < String.length key then Char.code key.[i] else 0 in
          Char.chr (k lxor c))
    in
    Sha256.digest (pad 0x5c ^ Sha256.digest (pad 0x36 ^ msg))

  let rfc6979_k d digest =
    let x = Bn.to_bytes_be ~len:32 d in
    let h1 = Bn.to_bytes_be ~len:32 (Bn.mod_ (Bn.of_bytes_be digest) n) in
    let v = ref (String.make 32 '\x01') in
    let k = ref (String.make 32 '\x00') in
    k := hmac_sha256 ~key:!k (!v ^ "\x00" ^ x ^ h1);
    v := hmac_sha256 ~key:!k !v;
    k := hmac_sha256 ~key:!k (!v ^ "\x01" ^ x ^ h1);
    v := hmac_sha256 ~key:!k !v;
    let rec attempt () =
      v := hmac_sha256 ~key:!k !v;
      let candidate = Bn.of_bytes_be !v in
      if (not (Bn.is_zero candidate)) && Bn.compare candidate n < 0 then candidate
      else begin
        k := hmac_sha256 ~key:!k (!v ^ "\x00");
        v := hmac_sha256 ~key:!k !v;
        attempt ()
      end
    in
    attempt ()

  let sign_digest d digest =
    if String.length digest <> 32 then invalid_arg "Refcrypto.Ecdsa.sign_digest: need 32 bytes";
    let z = Bn.mod_ (Bn.of_bytes_be digest) n in
    let rec attempt k =
      match P256.to_affine (P256.base_mul k) with
      | None -> attempt (Bn.add k Bn.one)
      | Some (x1, _) ->
        let r = Bn.mod_ x1 n in
        if Bn.is_zero r then attempt (Bn.add k Bn.one)
        else begin
          let kinv = Modring.inv_prime P256.order k in
          let s =
            Modring.mul P256.order kinv
              (Modring.add P256.order z (Modring.mul P256.order r d))
          in
          if Bn.is_zero s then attempt (Bn.add k Bn.one)
          else Bn.to_bytes_be ~len:32 r ^ Bn.to_bytes_be ~len:32 s
        end
    in
    attempt (rfc6979_k d digest)

  let sign d msg = sign_digest d (Sha256.digest msg)

  let verify_digest q ~digest ~signature =
    String.length signature = 64 && String.length digest = 32
    && (not (P256.is_infinity q))
    &&
    let r = Bn.of_bytes_be (String.sub signature 0 32) in
    let s = Bn.of_bytes_be (String.sub signature 32 32) in
    let valid_range v = (not (Bn.is_zero v)) && Bn.compare v n < 0 in
    valid_range r && valid_range s
    &&
    let z = Bn.mod_ (Bn.of_bytes_be digest) n in
    let sinv = Modring.inv_prime P256.order s in
    let u1 = Modring.mul P256.order z sinv in
    let u2 = Modring.mul P256.order r sinv in
    let pt = P256.add (P256.base_mul u1) (P256.mul u2 q) in
    match P256.to_affine pt with
    | None -> false
    | Some (x1, _) -> Bn.equal (Bn.mod_ x1 n) r

  let verify q ~msg ~signature = verify_digest q ~digest:(Sha256.digest msg) ~signature
end

(* ------------------------------------------------------------------ *)
(* Bit-by-bit GHASH and a reference GCM encrypt built on it. *)

module Gcm = struct
  type block = int64 * int64

  let block_of_string s off : block =
    let get i =
      if off + i < String.length s then Int64.of_int (Char.code s.[off + i]) else 0L
    in
    let half base =
      let v = ref 0L in
      for i = 0 to 7 do
        v := Int64.logor (Int64.shift_left !v 8) (get (base + i))
      done;
      !v
    in
    (half 0, half 8)

  let string_of_block ((hi, lo) : block) =
    String.init 16 (fun i ->
        let word = if i < 8 then hi else lo in
        Char.chr (Int64.to_int (Int64.shift_right_logical word (8 * (7 - (i mod 8)))) land 0xff))

  let xor_block ((a, b) : block) ((c, d) : block) : block =
    (Int64.logxor a c, Int64.logxor b d)

  (* GF(2^128) multiplication, right-shift method from SP 800-38D 6.3. *)
  let gf_mul (x : block) (y : block) : block =
    let z = ref (0L, 0L) in
    let v = ref y in
    let xhi, xlo = x in
    for i = 0 to 127 do
      let bit =
        if i < 64 then Int64.logand (Int64.shift_right_logical xhi (63 - i)) 1L
        else Int64.logand (Int64.shift_right_logical xlo (127 - i)) 1L
      in
      if Int64.equal bit 1L then z := xor_block !z !v;
      let vhi, vlo = !v in
      let lsb = Int64.logand vlo 1L in
      let vlo' = Int64.logor (Int64.shift_right_logical vlo 1) (Int64.shift_left vhi 63) in
      let vhi' = Int64.shift_right_logical vhi 1 in
      v :=
        if Int64.equal lsb 1L then (Int64.logxor vhi' 0xe100000000000000L, vlo')
        else (vhi', vlo')
    done;
    !z

  let ghash h data_parts =
    let y = ref (0L, 0L) in
    let absorb s =
      let len = String.length s in
      let blocks = (len + 15) / 16 in
      for i = 0 to blocks - 1 do
        y := gf_mul (xor_block !y (block_of_string s (16 * i))) h
      done
    in
    List.iter absorb data_parts;
    !y

  let inc32 ((hi, lo) : block) : block =
    let counter = Int64.logand lo 0xffffffffL in
    let counter' = Int64.logand (Int64.add counter 1L) 0xffffffffL in
    (hi, Int64.logor (Int64.logand lo 0xffffffff00000000L) counter')

  let length_block aad_len ct_len : block = (Int64.of_int (8 * aad_len), Int64.of_int (8 * ct_len))

  let derive ~key ~iv =
    let aes = Aes.expand_key key in
    let h = block_of_string (Aes.encrypt_block aes (String.make 16 '\000')) 0 in
    let j0 =
      if String.length iv = 12 then block_of_string (iv ^ "\000\000\000\001") 0
      else begin
        if String.length iv = 0 then invalid_arg "Refcrypto.Gcm: empty IV";
        let pad = (16 - (String.length iv mod 16)) mod 16 in
        let lenb = string_of_block (0L, Int64.of_int (8 * String.length iv)) in
        ghash h [ iv ^ String.make pad '\000' ^ lenb ]
      end
    in
    (aes, h, j0)

  let ctr_transform aes j0 input =
    let len = String.length input in
    let out = Bytes.create len in
    let counter = ref j0 in
    let blocks = (len + 15) / 16 in
    for i = 0 to blocks - 1 do
      counter := inc32 !counter;
      let keystream = Aes.encrypt_block aes (string_of_block !counter) in
      let base = 16 * i in
      let n = min 16 (len - base) in
      for j = 0 to n - 1 do
        Bytes.set out (base + j)
          (Char.chr (Char.code input.[base + j] lxor Char.code keystream.[j]))
      done
    done;
    Bytes.to_string out

  let compute_tag aes h j0 ~aad ~ct =
    let pad s = String.make ((16 - (String.length s mod 16)) mod 16) '\000' in
    let s =
      ghash h
        [ aad ^ pad aad; ct ^ pad ct;
          string_of_block (length_block (String.length aad) (String.length ct)) ]
    in
    let ek_j0 = block_of_string (Aes.encrypt_block aes (string_of_block j0)) 0 in
    string_of_block (xor_block s ek_j0)

  let encrypt ~key ~iv ?(aad = "") plaintext =
    let aes, h, j0 = derive ~key ~iv in
    let ct = ctr_transform aes j0 plaintext in
    (ct, compute_tag aes h j0 ~aad ~ct)

  (* GHASH as 16-byte-block strings, for differential tests against the
     table-driven implementation. *)
  let ghash_bytes ~h parts = string_of_block (ghash (block_of_string h 0) parts)
end

(** HMAC-SHA-256 (RFC 2104), used by the RFC 6979 deterministic nonce
    generator.

    A {!key} captures the SHA-256 states after the ipad/opad blocks, so
    repeated MACs under one key (the RFC 6979 loop shape) skip the pad
    derivation and key block hashing entirely. *)

type key

val prepare : string -> key
(** Derive the prepared inner/outer states for a key of any length. *)

val mac : key -> string -> string
(** 32-byte tag under a prepared key. *)

val sha256 : key:string -> string -> string
(** One-shot [sha256 ~key msg]: the 32-byte HMAC tag. *)

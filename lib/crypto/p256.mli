(** The NIST P-256 (secp256r1) elliptic curve.

    WaTZ selects this curve (§V) for the attestation key pair (ECDSA),
    the session keys (ECDHE) and the evidence signatures. Points are
    computed in Jacobian coordinates over the {!Fe256} Montgomery
    field, with 4-bit windowed scalar multiplication, a fixed-base comb
    for the generator, and Shamir's trick for the ECDSA-verify shape.

    Caution: like the rest of this simulation's crypto, the scalar
    ladders here are *not* constant-time (window digits index tables,
    special cases branch). See DESIGN.md on the fast-path contract. *)

type point
(** A point on the curve, including the point at infinity. Points carry
    a memoized window table (see {!prepare}); the table is part of the
    cache, not the value — {!equal} ignores it. *)

val field : Modring.t
(** The prime field F{_p} (generic-ring view, kept for tests/tools). *)

val order : Modring.t
(** The (prime) group order ring F{_n} (generic-ring view). *)

val field_ring : Fe256.ring
(** Montgomery ring for F{_p} — the fast path used by the point ops. *)

val scalar_ring : Fe256.ring
(** Montgomery ring for F{_n}, shared with {!Ecdsa}. *)

val n : Bn.t
(** The group order as an integer. *)

val infinity : point
val is_infinity : point -> bool
val base : point
(** The standard generator G. *)

val of_affine : Bn.t -> Bn.t -> point
(** Raises [Invalid_argument] if the coordinates are not on the curve. *)

val to_affine : point -> (Bn.t * Bn.t) option
(** [None] for the point at infinity. *)

val add : point -> point -> point
val double : point -> point

val mul : Bn.t -> point -> point
(** Scalar multiplication, 4-bit windowed. The scalar is reduced mod
    the group order. Builds (and memoizes) the point's window table. *)

val base_mul : Bn.t -> point
(** [k]G via the fixed-base comb: at most 64 mixed additions. *)

val double_mul : Bn.t -> Bn.t -> point -> point
(** [double_mul u1 u2 q] is [u1]G + [u2]Q on a shared doubling ladder
    (Shamir's trick) — the ECDSA verification inner loop. *)

val double_mul_batch : (Bn.t * Bn.t * point) array -> (Bn.t * Bn.t) option array
(** [double_mul_batch [| (u1, u2, q); ... |]] computes every
    [u1]G + [u2]Q doubling-free on per-point combs (built and memoized
    on first use, see {!prepare_comb}) and normalises all results with
    a single shared field inversion (Montgomery's trick) — the
    batch-verify workhorse. Each slot holds the affine coordinates of
    its sum, or [None] when the sum is the point at infinity.
    Agrees exactly with per-entry [double_mul] + [to_affine]. *)

val prepare_comb : point -> unit
(** Precompute and memoize the point's full comb ([1..15] * 16^j * P
    for every nibble position), the table behind {!double_mul_batch}:
    ~64x the window table's size, pays for itself once the key verifies
    more than a couple of signatures. Idempotent; a no-op on the point
    at infinity. The same single-domain ownership rule as {!prepare}
    applies — build the comb in the domain that uses it, or before
    spawning. *)

val prepare : point -> unit
(** Precompute and memoize the point's window table so later {!mul} /
    {!double_mul} calls skip table setup. Idempotent; a no-op on the
    point at infinity. Long-lived verifier keys should be prepared
    once and reused.

    Domain ownership: the memo is an unsynchronised per-point cache, so
    a point must not be mutated from two domains at once. Either keep
    every point domain-private (the fleet constructs each shard's keys
    inside the shard's domain) or fully [prepare]/[encode] shared
    points before spawning — [Domain.spawn] publishes everything the
    parent wrote. The generator's comb is the one cross-domain table
    and is published atomically by {!prewarm}. *)

val prewarm : unit -> unit
(** Force the one-time lazy tables (the fixed-base comb for G) so a
    server's first request does not pay their construction. Safe to
    call from any domain (atomic publication; concurrent builders race
    benignly to identical tables). *)

val equal : point -> point -> bool
val on_curve : Bn.t -> Bn.t -> bool

val encode : point -> string
(** Uncompressed SEC 1 encoding: [0x04 || x || y], 65 bytes, memoized
    per point (the first call pays the field inversion; later calls
    return the cached string). Raises [Invalid_argument] on the point
    at infinity. *)

val decode : string -> point option
(** Parses and validates an uncompressed point. *)

type session_keys = { kdk : string; k_m : string; k_e : string }

let reverse_bytes s = String.init (String.length s) (fun i -> s.[String.length s - 1 - i])

(* The all-zero CMAC key is fixed by the derivation, so prepare it once
   for the whole process. *)
let zero_key = lazy (Cmac.prepare (String.make 16 '\000'))

let kdk_of_shared gab_x =
  if String.length gab_x <> 32 then invalid_arg "Kdf.kdk_of_shared: need 32 bytes";
  (* Intel's derivation feeds the little-endian x-coordinate. *)
  Cmac.mac_with (Lazy.force zero_key) (reverse_bytes gab_x)

let derive_label ~kdk label = Cmac.mac ~key:kdk ("\x01" ^ label ^ "\x00\x80\x00")

let session_of_shared gab_x =
  let kdk = kdk_of_shared gab_x in
  (* One prepared KDK serves every label derivation. *)
  let key = Cmac.prepare kdk in
  let derive label = Cmac.mac_with key ("\x01" ^ label ^ "\x00\x80\x00") in
  { kdk; k_m = derive "SMK"; k_e = derive "SK" }

(** AES-CMAC (RFC 4493 / NIST SP 800-38B).

    WaTZ uses AES-CMAC-128 both to authenticate protocol messages and as
    the pseudo-random function of the SGX-style key-derivation schedule
    ({!Kdf}). A prepared {!key} amortises the AES key expansion and
    subkey derivation across calls. *)

type key

val prepare : string -> key
(** Expand a 16-byte key and derive K1/K2 once. *)

val mac_with : key -> string -> string
(** 16-byte tag under a prepared key. *)

val mac : key:string -> string -> string
(** One-shot [mac ~key msg]: the 16-byte CMAC tag. [key] must be 16
    bytes. *)

val verify : key:string -> tag:string -> string -> bool

(** Montgomery arithmetic for 256-bit prime rings.

    The fast-path replacement for {!Modring} in the P-256 hot loops:
    9 limbs of 29 bits in native ints, CIOS Montgomery products, and
    Fermat inversion. One {!ring} instance each backs the P-256 field
    (mod p) and scalar ring (mod n).

    Elements are tied to the ring they were created with; mixing rings
    is a caller bug and silently computes garbage. All values stay
    fully reduced, so {!equal}/{!is_zero} are plain representation
    comparisons. *)

type t
(** A ring element, internally in Montgomery form. *)

type ring

val create : Bn.t -> ring
(** [create m] for an odd modulus [m], [3 <= m < 2^256]. {!inv} and the
    semantics of the ring additionally assume [m] prime. *)

val modulus : ring -> Bn.t

val zero : ring -> t
val one : ring -> t
val of_bn : ring -> Bn.t -> t
(** Reduces mod [m] first, so any non-negative value is accepted. *)

val of_int : ring -> int -> t
val to_bn : ring -> t -> Bn.t

val add : ring -> t -> t -> t
val sub : ring -> t -> t -> t
val neg : ring -> t -> t
val mul : ring -> t -> t -> t
val sqr : ring -> t -> t

val inv : ring -> t -> t
(** Fermat inversion [a^(m-2)]; requires a prime modulus. [inv zero]
    returns zero. *)

val pow : ring -> t -> Bn.t -> t

val equal : t -> t -> bool
val is_zero : t -> bool
val copy : t -> t

let xor16 a b = String.init 16 (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

(* Left-shift a 16-byte string by one bit. *)
let shl1 s =
  let out = Bytes.create 16 in
  let carry = ref 0 in
  for i = 15 downto 0 do
    let v = (Char.code s.[i] lsl 1) lor !carry in
    Bytes.set out i (Char.chr (v land 0xff));
    carry := v lsr 8
  done;
  (Bytes.to_string out, !carry)

let subkey l =
  let shifted, msb = shl1 l in
  if msb = 1 then
    String.mapi (fun i c -> if i = 15 then Char.chr (Char.code c lxor 0x87) else c) shifted
  else shifted

(* Prepared key: the expanded AES schedule and both subkeys, derived
   once instead of per call (the Kdf derives several labels under one
   KDK; the protocol MACs every message under K_m). *)
type key = { aes : Aes.key; k1 : string; k2 : string }

let prepare k =
  if String.length k <> 16 then invalid_arg "Cmac.prepare: key must be 16 bytes";
  let aes = Aes.expand_key k in
  let l = Aes.encrypt_block aes (String.make 16 '\000') in
  let k1 = subkey l in
  { aes; k1; k2 = subkey k1 }

let mac_with { aes; k1; k2 } msg =
  let len = String.length msg in
  let n_blocks = if len = 0 then 1 else (len + 15) / 16 in
  let complete = len > 0 && len mod 16 = 0 in
  let last =
    if complete then xor16 (String.sub msg (len - 16) 16) k1
    else begin
      let rem = len - (16 * (n_blocks - 1)) in
      let padded =
        String.sub msg (16 * (n_blocks - 1)) rem ^ "\x80" ^ String.make (15 - rem) '\000'
      in
      xor16 padded k2
    end
  in
  let x = ref (String.make 16 '\000') in
  for i = 0 to n_blocks - 2 do
    x := Aes.encrypt_block aes (xor16 !x (String.sub msg (16 * i) 16))
  done;
  Aes.encrypt_block aes (xor16 !x last)

let mac ~key msg =
  if String.length key <> 16 then invalid_arg "Cmac.mac: key must be 16 bytes";
  mac_with (prepare key) msg

let verify ~key ~tag msg =
  let expected = mac ~key msg in
  let diff = ref (String.length tag lxor 16) in
  String.iteri
    (fun i c -> if i < 16 then diff := !diff lor (Char.code c lxor Char.code expected.[i]))
    tag;
  !diff = 0

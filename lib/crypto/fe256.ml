(* Montgomery arithmetic for 256-bit prime rings.

   Elements are 9 little-endian limbs of 29 bits each (beta = 2^29,
   R = 2^261), stored in native ints. The CIOS product keeps every
   partial sum below beta^2 - 1 < 2^58, comfortably inside OCaml's
   63-bit int, so the whole multiply runs without boxing. One module
   instance backs both P-256 rings: the field mod p and the scalar
   ring mod n. Values are kept fully reduced, so limb-array equality
   is value equality. *)

let limbs = 9
let limb_bits = 29
let limb_mask = (1 lsl limb_bits) - 1

type t = int array

type ring = {
  m : int array; (* modulus limbs *)
  m_bn : Bn.t;
  n0 : int; (* -m^-1 mod beta *)
  r2 : t; (* R^2 mod m, ordinary representation *)
  one_m : t; (* R mod m: the Montgomery image of 1 *)
  fermat_e : Bn.t; (* m - 2 *)
  fermat_bits : int;
}

let limbs_of_bn v =
  let s = Bn.to_bytes_be ~len:32 v in
  let out = Array.make limbs 0 in
  let acc = ref 0 and bits = ref 0 and li = ref 0 in
  for i = 31 downto 0 do
    acc := !acc lor (Char.code s.[i] lsl !bits);
    bits := !bits + 8;
    if !bits >= limb_bits then begin
      out.(!li) <- !acc land limb_mask;
      incr li;
      acc := !acc lsr limb_bits;
      bits := !bits - limb_bits
    end
  done;
  if !bits > 0 then out.(!li) <- !acc;
  out

let bn_of_limbs a =
  let b = Bytes.make 33 '\000' in
  let acc = ref 0 and bits = ref 0 and bi = ref 32 in
  for i = 0 to limbs - 1 do
    acc := !acc lor (a.(i) lsl !bits);
    bits := !bits + limb_bits;
    while !bits >= 8 do
      Bytes.set b !bi (Char.unsafe_chr (!acc land 0xff));
      decr bi;
      acc := !acc lsr 8;
      bits := !bits - 8
    done
  done;
  if !bits > 0 then Bytes.set b !bi (Char.unsafe_chr (!acc land 0xff));
  Bn.of_bytes_be (Bytes.unsafe_to_string b)

let ge a b =
  let rec go i = if i < 0 then true else if a.(i) <> b.(i) then a.(i) > b.(i) else go (i - 1) in
  go (limbs - 1)

(* a <- a - b assuming the combined value (including any carry the
   caller tracks above limb 8) is >= b; the final borrow, if any,
   cancels that carry. *)
let sub_in_place a b =
  let borrow = ref 0 in
  for i = 0 to limbs - 1 do
    let d = Array.unsafe_get a i - Array.unsafe_get b i - !borrow in
    if d < 0 then begin
      Array.unsafe_set a i (d + (1 lsl limb_bits));
      borrow := 1
    end
    else begin
      Array.unsafe_set a i d;
      borrow := 0
    end
  done

let create m_bn =
  if Bn.is_zero m_bn || not (Bn.testbit m_bn 0) then
    invalid_arg "Fe256.create: modulus must be odd";
  if Bn.bit_length m_bn > 256 || Bn.compare m_bn (Bn.of_int 3) < 0 then
    invalid_arg "Fe256.create: modulus out of range";
  let m = limbs_of_bn m_bn in
  let m0 = m.(0) in
  (* Newton's iteration doubles the valid bit-width each round:
     odd m0 is its own inverse mod 8, so 5 rounds cover 29 bits. *)
  let inv = ref m0 in
  for _ = 1 to 5 do
    let p = (m0 * !inv) land limb_mask in
    inv := (!inv * (2 - p)) land limb_mask
  done;
  let n0 = ((1 lsl limb_bits) - !inv) land limb_mask in
  let mont_bits = limbs * limb_bits in
  let r2 = limbs_of_bn (Bn.mod_ (Bn.shift_left Bn.one (2 * mont_bits)) m_bn) in
  let one_m = limbs_of_bn (Bn.mod_ (Bn.shift_left Bn.one mont_bits) m_bn) in
  let fermat_e = Bn.sub m_bn (Bn.of_int 2) in
  { m; m_bn; n0; r2; one_m; fermat_e; fermat_bits = Bn.bit_length fermat_e }

let modulus r = r.m_bn

(* CIOS Montgomery product: a * b * R^-1 mod m. *)
let montmul r a b =
  let m = r.m and n0 = r.n0 in
  let t = Array.make (limbs + 2) 0 in
  for i = 0 to limbs - 1 do
    let bi = Array.unsafe_get b i in
    let c = ref 0 in
    for j = 0 to limbs - 1 do
      let s = Array.unsafe_get t j + (Array.unsafe_get a j * bi) + !c in
      Array.unsafe_set t j (s land limb_mask);
      c := s lsr limb_bits
    done;
    let s = t.(limbs) + !c in
    t.(limbs) <- s land limb_mask;
    t.(limbs + 1) <- s lsr limb_bits;
    let mq = (Array.unsafe_get t 0 * n0) land limb_mask in
    let s0 = Array.unsafe_get t 0 + (mq * Array.unsafe_get m 0) in
    let c = ref (s0 lsr limb_bits) in
    for j = 1 to limbs - 1 do
      let s = Array.unsafe_get t j + (mq * Array.unsafe_get m j) + !c in
      Array.unsafe_set t (j - 1) (s land limb_mask);
      c := s lsr limb_bits
    done;
    let s = t.(limbs) + !c in
    t.(limbs - 1) <- s land limb_mask;
    t.(limbs) <- t.(limbs + 1) + (s lsr limb_bits)
  done;
  let res = Array.sub t 0 limbs in
  if t.(limbs) <> 0 || ge res m then sub_in_place res m;
  res

let mul = montmul
let sqr r a = montmul r a a

let add r a b =
  let out = Array.make limbs 0 in
  let c = ref 0 in
  for i = 0 to limbs - 1 do
    let s = Array.unsafe_get a i + Array.unsafe_get b i + !c in
    Array.unsafe_set out i (s land limb_mask);
    c := s lsr limb_bits
  done;
  if ge out r.m then sub_in_place out r.m;
  out

let sub r a b =
  let out = Array.make limbs 0 in
  let borrow = ref 0 in
  for i = 0 to limbs - 1 do
    let d = Array.unsafe_get a i - Array.unsafe_get b i - !borrow in
    if d < 0 then begin
      Array.unsafe_set out i (d + (1 lsl limb_bits));
      borrow := 1
    end
    else begin
      Array.unsafe_set out i d;
      borrow := 0
    end
  done;
  if !borrow <> 0 then begin
    let c = ref 0 in
    for i = 0 to limbs - 1 do
      let s = Array.unsafe_get out i + Array.unsafe_get r.m i + !c in
      Array.unsafe_set out i (s land limb_mask);
      c := s lsr limb_bits
    done
  end;
  out

let is_zero a =
  let rec go i = i >= limbs || (a.(i) = 0 && go (i + 1)) in
  go 0

let equal a b =
  let rec go i = i >= limbs || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let zero _ = Array.make limbs 0

let one r = Array.copy r.one_m

let neg r a = if is_zero a then Array.make limbs 0 else sub r (zero r) a

let copy = Array.copy

let of_bn r v =
  let v = if Bn.compare v r.m_bn >= 0 then Bn.mod_ v r.m_bn else v in
  montmul r (limbs_of_bn v) r.r2

let of_int r i = of_bn r (Bn.of_int i)

let to_bn r a =
  let o = Array.make limbs 0 in
  o.(0) <- 1;
  bn_of_limbs (montmul r a o)

(* Fermat inversion a^(m-2): valid for the prime moduli we use (the
   P-256 field prime and group order). Square-and-multiply over the
   exponent bits, ~380 Montgomery products. *)
let inv r a =
  let res = ref (Array.copy r.one_m) in
  for i = r.fermat_bits - 1 downto 0 do
    res := montmul r !res !res;
    if Bn.testbit r.fermat_e i then res := montmul r !res a
  done;
  !res

let pow r a e =
  let bits = Bn.bit_length e in
  let res = ref (Array.copy r.one_m) in
  for i = bits - 1 downto 0 do
    res := montmul r !res !res;
    if Bn.testbit e i then res := montmul r !res a
  done;
  !res

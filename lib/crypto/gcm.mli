(** AES-GCM authenticated encryption (NIST SP 800-38D).

    WaTZ uses AES-GCM-128 to protect the secret blob of msg3 in the
    remote-attestation protocol. GHASH runs on a per-key 4-bit table
    (Shoup's method) over unboxed 32-bit words. *)

val encrypt :
  key:string -> iv:string -> ?aad:string -> string -> string * string
(** [encrypt ~key ~iv ~aad plaintext] is [(ciphertext, tag)] with a
    16-byte tag. The IV may be any non-empty length; 12 bytes is the
    fast path. *)

val decrypt :
  key:string -> iv:string -> ?aad:string -> tag:string -> string -> string option
(** [decrypt ~key ~iv ~aad ~tag ciphertext] is [Some plaintext] when the
    tag authenticates, [None] otherwise. *)

val ghash_bytes : h:string -> string list -> string
(** Table-driven GHASH over 16-byte-zero-padded parts under the 16-byte
    hash subkey [h]. Exposed for differential testing against
    {!Refcrypto.Gcm.ghash_bytes}. *)

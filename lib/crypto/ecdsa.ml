type private_key = Bn.t
type public_key = P256.point

let n = P256.n
let sr = P256.scalar_ring

let private_of_bytes s =
  if String.length s <> 32 then invalid_arg "Ecdsa.private_of_bytes: need 32 bytes";
  let d = Bn.mod_ (Bn.of_bytes_be s) n in
  if Bn.is_zero d then Bn.one else d

let private_to_bytes d = Bn.to_bytes_be ~len:32 d
let public_of_private d = P256.base_mul d

let keypair_of_seed seed =
  (* Hash a counter with the seed until a valid scalar appears; with a
     256-bit group this virtually always succeeds on the first try. *)
  let rec candidate i =
    let h = Sha256.digest_list [ "watz-keygen"; seed; String.make 1 (Char.chr i) ] in
    let d = Bn.of_bytes_be h in
    if Bn.is_zero d || Bn.compare d n >= 0 then candidate (i + 1) else d
  in
  let d = candidate 0 in
  (d, public_of_private d)

(* RFC 6979 deterministic nonce generation, specialised to SHA-256 and
   a 256-bit group order (so bits2int is the identity on digests). Each
   K is prepared once and reused for the V updates under it. *)
let rfc6979_k d digest =
  let x = Bn.to_bytes_be ~len:32 d in
  let h1 =
    (* bits2octets: reduce the digest mod n, re-encode on 32 bytes. *)
    Bn.to_bytes_be ~len:32 (Bn.mod_ (Bn.of_bytes_be digest) n)
  in
  let v = ref (String.make 32 '\x01') in
  let k = ref (Hmac.prepare (String.make 32 '\x00')) in
  k := Hmac.prepare (Hmac.mac !k (!v ^ "\x00" ^ x ^ h1));
  v := Hmac.mac !k !v;
  k := Hmac.prepare (Hmac.mac !k (!v ^ "\x01" ^ x ^ h1));
  v := Hmac.mac !k !v;
  let rec attempt () =
    v := Hmac.mac !k !v;
    let candidate = Bn.of_bytes_be !v in
    if (not (Bn.is_zero candidate)) && Bn.compare candidate n < 0 then candidate
    else begin
      k := Hmac.prepare (Hmac.mac !k (!v ^ "\x00"));
      v := Hmac.mac !k !v;
      attempt ()
    end
  in
  attempt ()

let sign_digest d digest =
  if String.length digest <> 32 then invalid_arg "Ecdsa.sign_digest: need 32 bytes";
  let z = Fe256.of_bn sr (Bn.of_bytes_be digest) in
  let fd = Fe256.of_bn sr d in
  let rec attempt k =
    match P256.to_affine (P256.base_mul k) with
    | None -> attempt (Bn.add k Bn.one)
    | Some (x1, _) ->
        let r = Bn.mod_ x1 n in
        if Bn.is_zero r then attempt (Bn.add k Bn.one)
        else begin
          let fr = Fe256.of_bn sr r in
          let kinv = Fe256.inv sr (Fe256.of_bn sr k) in
          let fs = Fe256.mul sr kinv (Fe256.add sr z (Fe256.mul sr fr fd)) in
          if Fe256.is_zero fs then attempt (Bn.add k Bn.one)
          else Bn.to_bytes_be ~len:32 r ^ Bn.to_bytes_be ~len:32 (Fe256.to_bn sr fs)
        end
  in
  attempt (rfc6979_k d digest)

let sign d msg = sign_digest d (Sha256.digest msg)

let verify_digest q ~digest ~signature =
  String.length signature = 64 && String.length digest = 32
  && (not (P256.is_infinity q))
  &&
  let r = Bn.of_bytes_be (String.sub signature 0 32) in
  let s = Bn.of_bytes_be (String.sub signature 32 32) in
  let valid_range v = (not (Bn.is_zero v)) && Bn.compare v n < 0 in
  valid_range r && valid_range s
  &&
  let z = Fe256.of_bn sr (Bn.of_bytes_be digest) in
  let sinv = Fe256.inv sr (Fe256.of_bn sr s) in
  let u1 = Fe256.to_bn sr (Fe256.mul sr z sinv) in
  let u2 = Fe256.to_bn sr (Fe256.mul sr (Fe256.of_bn sr r) sinv) in
  match P256.to_affine (P256.double_mul u1 u2 q) with
  | None -> false
  | Some (x1, _) -> Bn.equal (Bn.mod_ x1 n) r

let verify q ~msg ~signature = verify_digest q ~digest:(Sha256.digest msg) ~signature

(* Batch verification with shared precomputation. Three amortisations
   over the per-signature path:

   - the s^-1 scalar inversions collapse into one Fermat inversion via
     Montgomery's trick (prefix products, invert once, walk back);
   - each u1*G + u2*Q runs doubling-free on the keys' memoized combs
     ({!P256.double_mul_batch}), so a key verifying many signatures
     pays its table once and ~half the point work per signature after;
   - all result points normalise through one shared field inversion.

   Per-signature results, not an aggregate: a bad signature fails only
   its own slot. Anything the fast path rejects is re-checked on the
   scalar [verify_digest] path, so the batch identifies the culprit
   exactly and a fast-path discrepancy can never turn a valid
   signature away. *)
let verify_digest_batch items =
  let k = Array.length items in
  if k = 0 then [||]
  else begin
    let out = Array.make k false in
    let valid_range v = (not (Bn.is_zero v)) && Bn.compare v n < 0 in
    let cand = ref [] in
    Array.iteri
      (fun i (q, digest, signature) ->
        if String.length signature = 64 && String.length digest = 32 && not (P256.is_infinity q)
        then begin
          let r = Bn.of_bytes_be (String.sub signature 0 32) in
          let s = Bn.of_bytes_be (String.sub signature 32 32) in
          if valid_range r && valid_range s then
            cand :=
              (i, q, r, Fe256.of_bn sr s, Fe256.of_bn sr (Bn.of_bytes_be digest)) :: !cand
        end)
      items;
    let cand = Array.of_list (List.rev !cand) in
    let m = Array.length cand in
    if m > 0 then begin
      (* Montgomery's trick over the scalar ring: s_i are range-checked
         nonzero, so the running product never vanishes. *)
      let prefix = Array.make m (Fe256.one sr) in
      let acc = ref (Fe256.one sr) in
      for j = 0 to m - 1 do
        prefix.(j) <- !acc;
        let _, _, _, s, _ = cand.(j) in
        acc := Fe256.mul sr !acc s
      done;
      let inv = ref (Fe256.inv sr !acc) in
      let sinvs = Array.make m (Fe256.one sr) in
      for j = m - 1 downto 0 do
        let _, _, _, s, _ = cand.(j) in
        sinvs.(j) <- Fe256.mul sr !inv prefix.(j);
        inv := Fe256.mul sr !inv s
      done;
      let entries =
        Array.mapi
          (fun j (_, q, r, _, z) ->
            let sinv = sinvs.(j) in
            let u1 = Fe256.to_bn sr (Fe256.mul sr z sinv) in
            let u2 = Fe256.to_bn sr (Fe256.mul sr (Fe256.of_bn sr r) sinv) in
            (u1, u2, q))
          cand
      in
      let points = P256.double_mul_batch entries in
      Array.iteri
        (fun j (i, _, r, _, _) ->
          match points.(j) with
          | None -> ()
          | Some (x1, _) -> out.(i) <- Bn.equal (Bn.mod_ x1 n) r)
        cand
    end;
    (* Fallback: every rejected slot re-verifies individually. *)
    Array.iteri
      (fun i (q, digest, signature) ->
        if not out.(i) then out.(i) <- verify_digest q ~digest ~signature)
      items;
    out
  end

let verify_batch items =
  verify_digest_batch
    (Array.map (fun (q, msg, signature) -> (q, Sha256.digest msg, signature)) items)

(* FIPS 180-4 on native unboxed ints.

   Words live in the low 32 bits of OCaml's 63-bit int, so the compress
   loop runs entirely on immediate values: no Int32 boxing, no
   allocation per round. Sums are left unmasked until a value feeds a
   rotation or is stored (five 32-bit terms stay far below 2^63). *)

let mask = 0xffffffff

type ctx = {
  h : int array; (* 8 words, always masked to 32 bits *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int64; (* total message bytes *)
}

let iv = [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
            0x1f83d9ab; 0x5be0cd19 |]

let init () = { h = Array.copy iv; buf = Bytes.create 64; buf_len = 0; total = 0L }

let reset ctx =
  Array.blit iv 0 ctx.h 0 8;
  ctx.buf_len <- 0;
  ctx.total <- 0L

let copy ctx =
  { h = Array.copy ctx.h; buf = Bytes.copy ctx.buf; buf_len = ctx.buf_len; total = ctx.total }

let blit src dst =
  Array.blit src.h 0 dst.h 0 8;
  Bytes.blit src.buf 0 dst.buf 0 src.buf_len;
  dst.buf_len <- src.buf_len;
  dst.total <- src.total

(* Hand-unrolled FIPS 180-4 block transform. The tricks that keep
   the tagged-int op count near the C envelope:
   - every chain value is masked to 32 bits exactly once, at
     creation, so the round body never re-masks and intermediate
     sums can carry garbage above bit 31 (adds/xors/ands cannot
     push garbage down into the low 32 bits);
   - each rotation set reads one 64-bit duplicate (m lor m lsl 32),
     making every rotr a single shift off the duplicate;
   - message words arrive eight bytes at a time through the raw
     64-bit load + byte-swap primitives (the int64 stays unboxed
     across the shift/to_int chain), two words per load;
   - maj reuses last round's a-xor-b: maj(a,b,c) =
     b lxor ((a lxor b) land (b lxor c)), and b lxor c this round
     is a lxor b of the previous round;
   - round constants >= 2^31 appear as negative literals so they
     fit an immediate add (equal mod 2^32, which is all that
     survives), and the 32-bit mask lives in one register behind
     an opaque binding instead of being re-materialised per use;
   - the eight working variables rotate by renaming (the x/y let
     chains), not by moving data, and each schedule word is
     let-bound right before the round that consumes it, so only a
     16-word window is ever live.
   Correctness is pinned by the NIST vectors and the differential
   suite against Refcrypto. *)

external get64u : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external bswap64 : int64 -> int64 = "%bswap_int64"

let compress ctx block off =
  let hst = ctx.h in
  (* keep the mask in a register: an opaque binding stops the compiler
     from re-materialising the 33-bit immediate at every use *)
  let msk = Sys.opaque_identity mask in
  let r0 = bswap64 (get64u block (off + 0)) in
  let w0 = Int64.to_int (Int64.shift_right_logical r0 32) in
  let w1 = Int64.to_int r0 land msk in
  let r1 = bswap64 (get64u block (off + 8)) in
  let w2 = Int64.to_int (Int64.shift_right_logical r1 32) in
  let w3 = Int64.to_int r1 land msk in
  let r2 = bswap64 (get64u block (off + 16)) in
  let w4 = Int64.to_int (Int64.shift_right_logical r2 32) in
  let w5 = Int64.to_int r2 land msk in
  let r3 = bswap64 (get64u block (off + 24)) in
  let w6 = Int64.to_int (Int64.shift_right_logical r3 32) in
  let w7 = Int64.to_int r3 land msk in
  let r4 = bswap64 (get64u block (off + 32)) in
  let w8 = Int64.to_int (Int64.shift_right_logical r4 32) in
  let w9 = Int64.to_int r4 land msk in
  let r5 = bswap64 (get64u block (off + 40)) in
  let w10 = Int64.to_int (Int64.shift_right_logical r5 32) in
  let w11 = Int64.to_int r5 land msk in
  let r6 = bswap64 (get64u block (off + 48)) in
  let w12 = Int64.to_int (Int64.shift_right_logical r6 32) in
  let w13 = Int64.to_int r6 land msk in
  let r7 = bswap64 (get64u block (off + 56)) in
  let w14 = Int64.to_int (Int64.shift_right_logical r7 32) in
  let w15 = Int64.to_int r7 land msk in
  let x0 = Array.unsafe_get hst 0 land msk in
  let xm1 = Array.unsafe_get hst 1 land msk in
  let xm2 = Array.unsafe_get hst 2 land msk in
  let xm3 = Array.unsafe_get hst 3 land msk in
  let y0 = Array.unsafe_get hst 4 land msk in
  let ym1 = Array.unsafe_get hst 5 land msk in
  let ym2 = Array.unsafe_get hst 6 land msk in
  let ym3 = Array.unsafe_get hst 7 land msk in
  let tm1 = xm1 lxor xm2 in
  let p16 = w1 lor (w1 lsl 32) in
  let q16 = w14 lor (w14 lsl 32) in
  let w16 =
    (w0 + ((p16 lsr 7) lxor (p16 lsr 18) lxor (w1 lsr 3))
    + w9 + ((q16 lsr 17) lxor (q16 lsr 19) lxor (w14 lsr 10)))
    land msk
  in
  let de0 = y0 lor (y0 lsl 32) in
  let t1_0 =
    ym3
    + ((de0 lsr 6) lxor (de0 lsr 11) lxor (de0 lsr 25))
    + (ym2 lxor (y0 land (ym1 lxor ym2)))
    + 1116352408 + w0
  in
  let da0 = x0 lor (x0 lsl 32) in
  let t0 = x0 lxor xm1 in
  let t2_0 =
    ((da0 lsr 2) lxor (da0 lsr 13) lxor (da0 lsr 22))
    + (xm1 lxor (t0 land tm1))
  in
  let x1 = (t1_0 + t2_0) land msk in
  let y1 = (xm3 + t1_0) land msk in
  let p17 = w2 lor (w2 lsl 32) in
  let q17 = w15 lor (w15 lsl 32) in
  let w17 =
    (w1 + ((p17 lsr 7) lxor (p17 lsr 18) lxor (w2 lsr 3))
    + w10 + ((q17 lsr 17) lxor (q17 lsr 19) lxor (w15 lsr 10)))
    land msk
  in
  let de1 = y1 lor (y1 lsl 32) in
  let t1_1 =
    ym2
    + ((de1 lsr 6) lxor (de1 lsr 11) lxor (de1 lsr 25))
    + (ym1 lxor (y1 land (y0 lxor ym1)))
    + 1899447441 + w1
  in
  let da1 = x1 lor (x1 lsl 32) in
  let t1 = x1 lxor x0 in
  let t2_1 =
    ((da1 lsr 2) lxor (da1 lsr 13) lxor (da1 lsr 22))
    + (x0 lxor (t1 land t0))
  in
  let x2 = (t1_1 + t2_1) land msk in
  let y2 = (xm2 + t1_1) land msk in
  let p18 = w3 lor (w3 lsl 32) in
  let q18 = w16 lor (w16 lsl 32) in
  let w18 =
    (w2 + ((p18 lsr 7) lxor (p18 lsr 18) lxor (w3 lsr 3))
    + w11 + ((q18 lsr 17) lxor (q18 lsr 19) lxor (w16 lsr 10)))
    land msk
  in
  let de2 = y2 lor (y2 lsl 32) in
  let t1_2 =
    ym1
    + ((de2 lsr 6) lxor (de2 lsr 11) lxor (de2 lsr 25))
    + (y0 lxor (y2 land (y1 lxor y0)))
    + (-1245643825) + w2
  in
  let da2 = x2 lor (x2 lsl 32) in
  let t2 = x2 lxor x1 in
  let t2_2 =
    ((da2 lsr 2) lxor (da2 lsr 13) lxor (da2 lsr 22))
    + (x1 lxor (t2 land t1))
  in
  let x3 = (t1_2 + t2_2) land msk in
  let y3 = (xm1 + t1_2) land msk in
  let p19 = w4 lor (w4 lsl 32) in
  let q19 = w17 lor (w17 lsl 32) in
  let w19 =
    (w3 + ((p19 lsr 7) lxor (p19 lsr 18) lxor (w4 lsr 3))
    + w12 + ((q19 lsr 17) lxor (q19 lsr 19) lxor (w17 lsr 10)))
    land msk
  in
  let de3 = y3 lor (y3 lsl 32) in
  let t1_3 =
    y0
    + ((de3 lsr 6) lxor (de3 lsr 11) lxor (de3 lsr 25))
    + (y1 lxor (y3 land (y2 lxor y1)))
    + (-373957723) + w3
  in
  let da3 = x3 lor (x3 lsl 32) in
  let t3 = x3 lxor x2 in
  let t2_3 =
    ((da3 lsr 2) lxor (da3 lsr 13) lxor (da3 lsr 22))
    + (x2 lxor (t3 land t2))
  in
  let x4 = (t1_3 + t2_3) land msk in
  let y4 = (x0 + t1_3) land msk in
  let p20 = w5 lor (w5 lsl 32) in
  let q20 = w18 lor (w18 lsl 32) in
  let w20 =
    (w4 + ((p20 lsr 7) lxor (p20 lsr 18) lxor (w5 lsr 3))
    + w13 + ((q20 lsr 17) lxor (q20 lsr 19) lxor (w18 lsr 10)))
    land msk
  in
  let de4 = y4 lor (y4 lsl 32) in
  let t1_4 =
    y1
    + ((de4 lsr 6) lxor (de4 lsr 11) lxor (de4 lsr 25))
    + (y2 lxor (y4 land (y3 lxor y2)))
    + 961987163 + w4
  in
  let da4 = x4 lor (x4 lsl 32) in
  let t4 = x4 lxor x3 in
  let t2_4 =
    ((da4 lsr 2) lxor (da4 lsr 13) lxor (da4 lsr 22))
    + (x3 lxor (t4 land t3))
  in
  let x5 = (t1_4 + t2_4) land msk in
  let y5 = (x1 + t1_4) land msk in
  let p21 = w6 lor (w6 lsl 32) in
  let q21 = w19 lor (w19 lsl 32) in
  let w21 =
    (w5 + ((p21 lsr 7) lxor (p21 lsr 18) lxor (w6 lsr 3))
    + w14 + ((q21 lsr 17) lxor (q21 lsr 19) lxor (w19 lsr 10)))
    land msk
  in
  let de5 = y5 lor (y5 lsl 32) in
  let t1_5 =
    y2
    + ((de5 lsr 6) lxor (de5 lsr 11) lxor (de5 lsr 25))
    + (y3 lxor (y5 land (y4 lxor y3)))
    + 1508970993 + w5
  in
  let da5 = x5 lor (x5 lsl 32) in
  let t5 = x5 lxor x4 in
  let t2_5 =
    ((da5 lsr 2) lxor (da5 lsr 13) lxor (da5 lsr 22))
    + (x4 lxor (t5 land t4))
  in
  let x6 = (t1_5 + t2_5) land msk in
  let y6 = (x2 + t1_5) land msk in
  let p22 = w7 lor (w7 lsl 32) in
  let q22 = w20 lor (w20 lsl 32) in
  let w22 =
    (w6 + ((p22 lsr 7) lxor (p22 lsr 18) lxor (w7 lsr 3))
    + w15 + ((q22 lsr 17) lxor (q22 lsr 19) lxor (w20 lsr 10)))
    land msk
  in
  let de6 = y6 lor (y6 lsl 32) in
  let t1_6 =
    y3
    + ((de6 lsr 6) lxor (de6 lsr 11) lxor (de6 lsr 25))
    + (y4 lxor (y6 land (y5 lxor y4)))
    + (-1841331548) + w6
  in
  let da6 = x6 lor (x6 lsl 32) in
  let t6 = x6 lxor x5 in
  let t2_6 =
    ((da6 lsr 2) lxor (da6 lsr 13) lxor (da6 lsr 22))
    + (x5 lxor (t6 land t5))
  in
  let x7 = (t1_6 + t2_6) land msk in
  let y7 = (x3 + t1_6) land msk in
  let p23 = w8 lor (w8 lsl 32) in
  let q23 = w21 lor (w21 lsl 32) in
  let w23 =
    (w7 + ((p23 lsr 7) lxor (p23 lsr 18) lxor (w8 lsr 3))
    + w16 + ((q23 lsr 17) lxor (q23 lsr 19) lxor (w21 lsr 10)))
    land msk
  in
  let de7 = y7 lor (y7 lsl 32) in
  let t1_7 =
    y4
    + ((de7 lsr 6) lxor (de7 lsr 11) lxor (de7 lsr 25))
    + (y5 lxor (y7 land (y6 lxor y5)))
    + (-1424204075) + w7
  in
  let da7 = x7 lor (x7 lsl 32) in
  let t7 = x7 lxor x6 in
  let t2_7 =
    ((da7 lsr 2) lxor (da7 lsr 13) lxor (da7 lsr 22))
    + (x6 lxor (t7 land t6))
  in
  let x8 = (t1_7 + t2_7) land msk in
  let y8 = (x4 + t1_7) land msk in
  let p24 = w9 lor (w9 lsl 32) in
  let q24 = w22 lor (w22 lsl 32) in
  let w24 =
    (w8 + ((p24 lsr 7) lxor (p24 lsr 18) lxor (w9 lsr 3))
    + w17 + ((q24 lsr 17) lxor (q24 lsr 19) lxor (w22 lsr 10)))
    land msk
  in
  let de8 = y8 lor (y8 lsl 32) in
  let t1_8 =
    y5
    + ((de8 lsr 6) lxor (de8 lsr 11) lxor (de8 lsr 25))
    + (y6 lxor (y8 land (y7 lxor y6)))
    + (-670586216) + w8
  in
  let da8 = x8 lor (x8 lsl 32) in
  let t8 = x8 lxor x7 in
  let t2_8 =
    ((da8 lsr 2) lxor (da8 lsr 13) lxor (da8 lsr 22))
    + (x7 lxor (t8 land t7))
  in
  let x9 = (t1_8 + t2_8) land msk in
  let y9 = (x5 + t1_8) land msk in
  let p25 = w10 lor (w10 lsl 32) in
  let q25 = w23 lor (w23 lsl 32) in
  let w25 =
    (w9 + ((p25 lsr 7) lxor (p25 lsr 18) lxor (w10 lsr 3))
    + w18 + ((q25 lsr 17) lxor (q25 lsr 19) lxor (w23 lsr 10)))
    land msk
  in
  let de9 = y9 lor (y9 lsl 32) in
  let t1_9 =
    y6
    + ((de9 lsr 6) lxor (de9 lsr 11) lxor (de9 lsr 25))
    + (y7 lxor (y9 land (y8 lxor y7)))
    + 310598401 + w9
  in
  let da9 = x9 lor (x9 lsl 32) in
  let t9 = x9 lxor x8 in
  let t2_9 =
    ((da9 lsr 2) lxor (da9 lsr 13) lxor (da9 lsr 22))
    + (x8 lxor (t9 land t8))
  in
  let x10 = (t1_9 + t2_9) land msk in
  let y10 = (x6 + t1_9) land msk in
  let p26 = w11 lor (w11 lsl 32) in
  let q26 = w24 lor (w24 lsl 32) in
  let w26 =
    (w10 + ((p26 lsr 7) lxor (p26 lsr 18) lxor (w11 lsr 3))
    + w19 + ((q26 lsr 17) lxor (q26 lsr 19) lxor (w24 lsr 10)))
    land msk
  in
  let de10 = y10 lor (y10 lsl 32) in
  let t1_10 =
    y7
    + ((de10 lsr 6) lxor (de10 lsr 11) lxor (de10 lsr 25))
    + (y8 lxor (y10 land (y9 lxor y8)))
    + 607225278 + w10
  in
  let da10 = x10 lor (x10 lsl 32) in
  let t10 = x10 lxor x9 in
  let t2_10 =
    ((da10 lsr 2) lxor (da10 lsr 13) lxor (da10 lsr 22))
    + (x9 lxor (t10 land t9))
  in
  let x11 = (t1_10 + t2_10) land msk in
  let y11 = (x7 + t1_10) land msk in
  let p27 = w12 lor (w12 lsl 32) in
  let q27 = w25 lor (w25 lsl 32) in
  let w27 =
    (w11 + ((p27 lsr 7) lxor (p27 lsr 18) lxor (w12 lsr 3))
    + w20 + ((q27 lsr 17) lxor (q27 lsr 19) lxor (w25 lsr 10)))
    land msk
  in
  let de11 = y11 lor (y11 lsl 32) in
  let t1_11 =
    y8
    + ((de11 lsr 6) lxor (de11 lsr 11) lxor (de11 lsr 25))
    + (y9 lxor (y11 land (y10 lxor y9)))
    + 1426881987 + w11
  in
  let da11 = x11 lor (x11 lsl 32) in
  let t11 = x11 lxor x10 in
  let t2_11 =
    ((da11 lsr 2) lxor (da11 lsr 13) lxor (da11 lsr 22))
    + (x10 lxor (t11 land t10))
  in
  let x12 = (t1_11 + t2_11) land msk in
  let y12 = (x8 + t1_11) land msk in
  let p28 = w13 lor (w13 lsl 32) in
  let q28 = w26 lor (w26 lsl 32) in
  let w28 =
    (w12 + ((p28 lsr 7) lxor (p28 lsr 18) lxor (w13 lsr 3))
    + w21 + ((q28 lsr 17) lxor (q28 lsr 19) lxor (w26 lsr 10)))
    land msk
  in
  let de12 = y12 lor (y12 lsl 32) in
  let t1_12 =
    y9
    + ((de12 lsr 6) lxor (de12 lsr 11) lxor (de12 lsr 25))
    + (y10 lxor (y12 land (y11 lxor y10)))
    + 1925078388 + w12
  in
  let da12 = x12 lor (x12 lsl 32) in
  let t12 = x12 lxor x11 in
  let t2_12 =
    ((da12 lsr 2) lxor (da12 lsr 13) lxor (da12 lsr 22))
    + (x11 lxor (t12 land t11))
  in
  let x13 = (t1_12 + t2_12) land msk in
  let y13 = (x9 + t1_12) land msk in
  let p29 = w14 lor (w14 lsl 32) in
  let q29 = w27 lor (w27 lsl 32) in
  let w29 =
    (w13 + ((p29 lsr 7) lxor (p29 lsr 18) lxor (w14 lsr 3))
    + w22 + ((q29 lsr 17) lxor (q29 lsr 19) lxor (w27 lsr 10)))
    land msk
  in
  let de13 = y13 lor (y13 lsl 32) in
  let t1_13 =
    y10
    + ((de13 lsr 6) lxor (de13 lsr 11) lxor (de13 lsr 25))
    + (y11 lxor (y13 land (y12 lxor y11)))
    + (-2132889090) + w13
  in
  let da13 = x13 lor (x13 lsl 32) in
  let t13 = x13 lxor x12 in
  let t2_13 =
    ((da13 lsr 2) lxor (da13 lsr 13) lxor (da13 lsr 22))
    + (x12 lxor (t13 land t12))
  in
  let x14 = (t1_13 + t2_13) land msk in
  let y14 = (x10 + t1_13) land msk in
  let p30 = w15 lor (w15 lsl 32) in
  let q30 = w28 lor (w28 lsl 32) in
  let w30 =
    (w14 + ((p30 lsr 7) lxor (p30 lsr 18) lxor (w15 lsr 3))
    + w23 + ((q30 lsr 17) lxor (q30 lsr 19) lxor (w28 lsr 10)))
    land msk
  in
  let de14 = y14 lor (y14 lsl 32) in
  let t1_14 =
    y11
    + ((de14 lsr 6) lxor (de14 lsr 11) lxor (de14 lsr 25))
    + (y12 lxor (y14 land (y13 lxor y12)))
    + (-1680079193) + w14
  in
  let da14 = x14 lor (x14 lsl 32) in
  let t14 = x14 lxor x13 in
  let t2_14 =
    ((da14 lsr 2) lxor (da14 lsr 13) lxor (da14 lsr 22))
    + (x13 lxor (t14 land t13))
  in
  let x15 = (t1_14 + t2_14) land msk in
  let y15 = (x11 + t1_14) land msk in
  let p31 = w16 lor (w16 lsl 32) in
  let q31 = w29 lor (w29 lsl 32) in
  let w31 =
    (w15 + ((p31 lsr 7) lxor (p31 lsr 18) lxor (w16 lsr 3))
    + w24 + ((q31 lsr 17) lxor (q31 lsr 19) lxor (w29 lsr 10)))
    land msk
  in
  let de15 = y15 lor (y15 lsl 32) in
  let t1_15 =
    y12
    + ((de15 lsr 6) lxor (de15 lsr 11) lxor (de15 lsr 25))
    + (y13 lxor (y15 land (y14 lxor y13)))
    + (-1046744716) + w15
  in
  let da15 = x15 lor (x15 lsl 32) in
  let t15 = x15 lxor x14 in
  let t2_15 =
    ((da15 lsr 2) lxor (da15 lsr 13) lxor (da15 lsr 22))
    + (x14 lxor (t15 land t14))
  in
  let x16 = (t1_15 + t2_15) land msk in
  let y16 = (x12 + t1_15) land msk in
  let p32 = w17 lor (w17 lsl 32) in
  let q32 = w30 lor (w30 lsl 32) in
  let w32 =
    (w16 + ((p32 lsr 7) lxor (p32 lsr 18) lxor (w17 lsr 3))
    + w25 + ((q32 lsr 17) lxor (q32 lsr 19) lxor (w30 lsr 10)))
    land msk
  in
  let de16 = y16 lor (y16 lsl 32) in
  let t1_16 =
    y13
    + ((de16 lsr 6) lxor (de16 lsr 11) lxor (de16 lsr 25))
    + (y14 lxor (y16 land (y15 lxor y14)))
    + (-459576895) + w16
  in
  let da16 = x16 lor (x16 lsl 32) in
  let t16 = x16 lxor x15 in
  let t2_16 =
    ((da16 lsr 2) lxor (da16 lsr 13) lxor (da16 lsr 22))
    + (x15 lxor (t16 land t15))
  in
  let x17 = (t1_16 + t2_16) land msk in
  let y17 = (x13 + t1_16) land msk in
  let p33 = w18 lor (w18 lsl 32) in
  let q33 = w31 lor (w31 lsl 32) in
  let w33 =
    (w17 + ((p33 lsr 7) lxor (p33 lsr 18) lxor (w18 lsr 3))
    + w26 + ((q33 lsr 17) lxor (q33 lsr 19) lxor (w31 lsr 10)))
    land msk
  in
  let de17 = y17 lor (y17 lsl 32) in
  let t1_17 =
    y14
    + ((de17 lsr 6) lxor (de17 lsr 11) lxor (de17 lsr 25))
    + (y15 lxor (y17 land (y16 lxor y15)))
    + (-272742522) + w17
  in
  let da17 = x17 lor (x17 lsl 32) in
  let t17 = x17 lxor x16 in
  let t2_17 =
    ((da17 lsr 2) lxor (da17 lsr 13) lxor (da17 lsr 22))
    + (x16 lxor (t17 land t16))
  in
  let x18 = (t1_17 + t2_17) land msk in
  let y18 = (x14 + t1_17) land msk in
  let p34 = w19 lor (w19 lsl 32) in
  let q34 = w32 lor (w32 lsl 32) in
  let w34 =
    (w18 + ((p34 lsr 7) lxor (p34 lsr 18) lxor (w19 lsr 3))
    + w27 + ((q34 lsr 17) lxor (q34 lsr 19) lxor (w32 lsr 10)))
    land msk
  in
  let de18 = y18 lor (y18 lsl 32) in
  let t1_18 =
    y15
    + ((de18 lsr 6) lxor (de18 lsr 11) lxor (de18 lsr 25))
    + (y16 lxor (y18 land (y17 lxor y16)))
    + 264347078 + w18
  in
  let da18 = x18 lor (x18 lsl 32) in
  let t18 = x18 lxor x17 in
  let t2_18 =
    ((da18 lsr 2) lxor (da18 lsr 13) lxor (da18 lsr 22))
    + (x17 lxor (t18 land t17))
  in
  let x19 = (t1_18 + t2_18) land msk in
  let y19 = (x15 + t1_18) land msk in
  let p35 = w20 lor (w20 lsl 32) in
  let q35 = w33 lor (w33 lsl 32) in
  let w35 =
    (w19 + ((p35 lsr 7) lxor (p35 lsr 18) lxor (w20 lsr 3))
    + w28 + ((q35 lsr 17) lxor (q35 lsr 19) lxor (w33 lsr 10)))
    land msk
  in
  let de19 = y19 lor (y19 lsl 32) in
  let t1_19 =
    y16
    + ((de19 lsr 6) lxor (de19 lsr 11) lxor (de19 lsr 25))
    + (y17 lxor (y19 land (y18 lxor y17)))
    + 604807628 + w19
  in
  let da19 = x19 lor (x19 lsl 32) in
  let t19 = x19 lxor x18 in
  let t2_19 =
    ((da19 lsr 2) lxor (da19 lsr 13) lxor (da19 lsr 22))
    + (x18 lxor (t19 land t18))
  in
  let x20 = (t1_19 + t2_19) land msk in
  let y20 = (x16 + t1_19) land msk in
  let p36 = w21 lor (w21 lsl 32) in
  let q36 = w34 lor (w34 lsl 32) in
  let w36 =
    (w20 + ((p36 lsr 7) lxor (p36 lsr 18) lxor (w21 lsr 3))
    + w29 + ((q36 lsr 17) lxor (q36 lsr 19) lxor (w34 lsr 10)))
    land msk
  in
  let de20 = y20 lor (y20 lsl 32) in
  let t1_20 =
    y17
    + ((de20 lsr 6) lxor (de20 lsr 11) lxor (de20 lsr 25))
    + (y18 lxor (y20 land (y19 lxor y18)))
    + 770255983 + w20
  in
  let da20 = x20 lor (x20 lsl 32) in
  let t20 = x20 lxor x19 in
  let t2_20 =
    ((da20 lsr 2) lxor (da20 lsr 13) lxor (da20 lsr 22))
    + (x19 lxor (t20 land t19))
  in
  let x21 = (t1_20 + t2_20) land msk in
  let y21 = (x17 + t1_20) land msk in
  let p37 = w22 lor (w22 lsl 32) in
  let q37 = w35 lor (w35 lsl 32) in
  let w37 =
    (w21 + ((p37 lsr 7) lxor (p37 lsr 18) lxor (w22 lsr 3))
    + w30 + ((q37 lsr 17) lxor (q37 lsr 19) lxor (w35 lsr 10)))
    land msk
  in
  let de21 = y21 lor (y21 lsl 32) in
  let t1_21 =
    y18
    + ((de21 lsr 6) lxor (de21 lsr 11) lxor (de21 lsr 25))
    + (y19 lxor (y21 land (y20 lxor y19)))
    + 1249150122 + w21
  in
  let da21 = x21 lor (x21 lsl 32) in
  let t21 = x21 lxor x20 in
  let t2_21 =
    ((da21 lsr 2) lxor (da21 lsr 13) lxor (da21 lsr 22))
    + (x20 lxor (t21 land t20))
  in
  let x22 = (t1_21 + t2_21) land msk in
  let y22 = (x18 + t1_21) land msk in
  let p38 = w23 lor (w23 lsl 32) in
  let q38 = w36 lor (w36 lsl 32) in
  let w38 =
    (w22 + ((p38 lsr 7) lxor (p38 lsr 18) lxor (w23 lsr 3))
    + w31 + ((q38 lsr 17) lxor (q38 lsr 19) lxor (w36 lsr 10)))
    land msk
  in
  let de22 = y22 lor (y22 lsl 32) in
  let t1_22 =
    y19
    + ((de22 lsr 6) lxor (de22 lsr 11) lxor (de22 lsr 25))
    + (y20 lxor (y22 land (y21 lxor y20)))
    + 1555081692 + w22
  in
  let da22 = x22 lor (x22 lsl 32) in
  let t22 = x22 lxor x21 in
  let t2_22 =
    ((da22 lsr 2) lxor (da22 lsr 13) lxor (da22 lsr 22))
    + (x21 lxor (t22 land t21))
  in
  let x23 = (t1_22 + t2_22) land msk in
  let y23 = (x19 + t1_22) land msk in
  let p39 = w24 lor (w24 lsl 32) in
  let q39 = w37 lor (w37 lsl 32) in
  let w39 =
    (w23 + ((p39 lsr 7) lxor (p39 lsr 18) lxor (w24 lsr 3))
    + w32 + ((q39 lsr 17) lxor (q39 lsr 19) lxor (w37 lsr 10)))
    land msk
  in
  let de23 = y23 lor (y23 lsl 32) in
  let t1_23 =
    y20
    + ((de23 lsr 6) lxor (de23 lsr 11) lxor (de23 lsr 25))
    + (y21 lxor (y23 land (y22 lxor y21)))
    + 1996064986 + w23
  in
  let da23 = x23 lor (x23 lsl 32) in
  let t23 = x23 lxor x22 in
  let t2_23 =
    ((da23 lsr 2) lxor (da23 lsr 13) lxor (da23 lsr 22))
    + (x22 lxor (t23 land t22))
  in
  let x24 = (t1_23 + t2_23) land msk in
  let y24 = (x20 + t1_23) land msk in
  let p40 = w25 lor (w25 lsl 32) in
  let q40 = w38 lor (w38 lsl 32) in
  let w40 =
    (w24 + ((p40 lsr 7) lxor (p40 lsr 18) lxor (w25 lsr 3))
    + w33 + ((q40 lsr 17) lxor (q40 lsr 19) lxor (w38 lsr 10)))
    land msk
  in
  let de24 = y24 lor (y24 lsl 32) in
  let t1_24 =
    y21
    + ((de24 lsr 6) lxor (de24 lsr 11) lxor (de24 lsr 25))
    + (y22 lxor (y24 land (y23 lxor y22)))
    + (-1740746414) + w24
  in
  let da24 = x24 lor (x24 lsl 32) in
  let t24 = x24 lxor x23 in
  let t2_24 =
    ((da24 lsr 2) lxor (da24 lsr 13) lxor (da24 lsr 22))
    + (x23 lxor (t24 land t23))
  in
  let x25 = (t1_24 + t2_24) land msk in
  let y25 = (x21 + t1_24) land msk in
  let p41 = w26 lor (w26 lsl 32) in
  let q41 = w39 lor (w39 lsl 32) in
  let w41 =
    (w25 + ((p41 lsr 7) lxor (p41 lsr 18) lxor (w26 lsr 3))
    + w34 + ((q41 lsr 17) lxor (q41 lsr 19) lxor (w39 lsr 10)))
    land msk
  in
  let de25 = y25 lor (y25 lsl 32) in
  let t1_25 =
    y22
    + ((de25 lsr 6) lxor (de25 lsr 11) lxor (de25 lsr 25))
    + (y23 lxor (y25 land (y24 lxor y23)))
    + (-1473132947) + w25
  in
  let da25 = x25 lor (x25 lsl 32) in
  let t25 = x25 lxor x24 in
  let t2_25 =
    ((da25 lsr 2) lxor (da25 lsr 13) lxor (da25 lsr 22))
    + (x24 lxor (t25 land t24))
  in
  let x26 = (t1_25 + t2_25) land msk in
  let y26 = (x22 + t1_25) land msk in
  let p42 = w27 lor (w27 lsl 32) in
  let q42 = w40 lor (w40 lsl 32) in
  let w42 =
    (w26 + ((p42 lsr 7) lxor (p42 lsr 18) lxor (w27 lsr 3))
    + w35 + ((q42 lsr 17) lxor (q42 lsr 19) lxor (w40 lsr 10)))
    land msk
  in
  let de26 = y26 lor (y26 lsl 32) in
  let t1_26 =
    y23
    + ((de26 lsr 6) lxor (de26 lsr 11) lxor (de26 lsr 25))
    + (y24 lxor (y26 land (y25 lxor y24)))
    + (-1341970488) + w26
  in
  let da26 = x26 lor (x26 lsl 32) in
  let t26 = x26 lxor x25 in
  let t2_26 =
    ((da26 lsr 2) lxor (da26 lsr 13) lxor (da26 lsr 22))
    + (x25 lxor (t26 land t25))
  in
  let x27 = (t1_26 + t2_26) land msk in
  let y27 = (x23 + t1_26) land msk in
  let p43 = w28 lor (w28 lsl 32) in
  let q43 = w41 lor (w41 lsl 32) in
  let w43 =
    (w27 + ((p43 lsr 7) lxor (p43 lsr 18) lxor (w28 lsr 3))
    + w36 + ((q43 lsr 17) lxor (q43 lsr 19) lxor (w41 lsr 10)))
    land msk
  in
  let de27 = y27 lor (y27 lsl 32) in
  let t1_27 =
    y24
    + ((de27 lsr 6) lxor (de27 lsr 11) lxor (de27 lsr 25))
    + (y25 lxor (y27 land (y26 lxor y25)))
    + (-1084653625) + w27
  in
  let da27 = x27 lor (x27 lsl 32) in
  let t27 = x27 lxor x26 in
  let t2_27 =
    ((da27 lsr 2) lxor (da27 lsr 13) lxor (da27 lsr 22))
    + (x26 lxor (t27 land t26))
  in
  let x28 = (t1_27 + t2_27) land msk in
  let y28 = (x24 + t1_27) land msk in
  let p44 = w29 lor (w29 lsl 32) in
  let q44 = w42 lor (w42 lsl 32) in
  let w44 =
    (w28 + ((p44 lsr 7) lxor (p44 lsr 18) lxor (w29 lsr 3))
    + w37 + ((q44 lsr 17) lxor (q44 lsr 19) lxor (w42 lsr 10)))
    land msk
  in
  let de28 = y28 lor (y28 lsl 32) in
  let t1_28 =
    y25
    + ((de28 lsr 6) lxor (de28 lsr 11) lxor (de28 lsr 25))
    + (y26 lxor (y28 land (y27 lxor y26)))
    + (-958395405) + w28
  in
  let da28 = x28 lor (x28 lsl 32) in
  let t28 = x28 lxor x27 in
  let t2_28 =
    ((da28 lsr 2) lxor (da28 lsr 13) lxor (da28 lsr 22))
    + (x27 lxor (t28 land t27))
  in
  let x29 = (t1_28 + t2_28) land msk in
  let y29 = (x25 + t1_28) land msk in
  let p45 = w30 lor (w30 lsl 32) in
  let q45 = w43 lor (w43 lsl 32) in
  let w45 =
    (w29 + ((p45 lsr 7) lxor (p45 lsr 18) lxor (w30 lsr 3))
    + w38 + ((q45 lsr 17) lxor (q45 lsr 19) lxor (w43 lsr 10)))
    land msk
  in
  let de29 = y29 lor (y29 lsl 32) in
  let t1_29 =
    y26
    + ((de29 lsr 6) lxor (de29 lsr 11) lxor (de29 lsr 25))
    + (y27 lxor (y29 land (y28 lxor y27)))
    + (-710438585) + w29
  in
  let da29 = x29 lor (x29 lsl 32) in
  let t29 = x29 lxor x28 in
  let t2_29 =
    ((da29 lsr 2) lxor (da29 lsr 13) lxor (da29 lsr 22))
    + (x28 lxor (t29 land t28))
  in
  let x30 = (t1_29 + t2_29) land msk in
  let y30 = (x26 + t1_29) land msk in
  let p46 = w31 lor (w31 lsl 32) in
  let q46 = w44 lor (w44 lsl 32) in
  let w46 =
    (w30 + ((p46 lsr 7) lxor (p46 lsr 18) lxor (w31 lsr 3))
    + w39 + ((q46 lsr 17) lxor (q46 lsr 19) lxor (w44 lsr 10)))
    land msk
  in
  let de30 = y30 lor (y30 lsl 32) in
  let t1_30 =
    y27
    + ((de30 lsr 6) lxor (de30 lsr 11) lxor (de30 lsr 25))
    + (y28 lxor (y30 land (y29 lxor y28)))
    + 113926993 + w30
  in
  let da30 = x30 lor (x30 lsl 32) in
  let t30 = x30 lxor x29 in
  let t2_30 =
    ((da30 lsr 2) lxor (da30 lsr 13) lxor (da30 lsr 22))
    + (x29 lxor (t30 land t29))
  in
  let x31 = (t1_30 + t2_30) land msk in
  let y31 = (x27 + t1_30) land msk in
  let p47 = w32 lor (w32 lsl 32) in
  let q47 = w45 lor (w45 lsl 32) in
  let w47 =
    (w31 + ((p47 lsr 7) lxor (p47 lsr 18) lxor (w32 lsr 3))
    + w40 + ((q47 lsr 17) lxor (q47 lsr 19) lxor (w45 lsr 10)))
    land msk
  in
  let de31 = y31 lor (y31 lsl 32) in
  let t1_31 =
    y28
    + ((de31 lsr 6) lxor (de31 lsr 11) lxor (de31 lsr 25))
    + (y29 lxor (y31 land (y30 lxor y29)))
    + 338241895 + w31
  in
  let da31 = x31 lor (x31 lsl 32) in
  let t31 = x31 lxor x30 in
  let t2_31 =
    ((da31 lsr 2) lxor (da31 lsr 13) lxor (da31 lsr 22))
    + (x30 lxor (t31 land t30))
  in
  let x32 = (t1_31 + t2_31) land msk in
  let y32 = (x28 + t1_31) land msk in
  let p48 = w33 lor (w33 lsl 32) in
  let q48 = w46 lor (w46 lsl 32) in
  let w48 =
    (w32 + ((p48 lsr 7) lxor (p48 lsr 18) lxor (w33 lsr 3))
    + w41 + ((q48 lsr 17) lxor (q48 lsr 19) lxor (w46 lsr 10)))
    land msk
  in
  let de32 = y32 lor (y32 lsl 32) in
  let t1_32 =
    y29
    + ((de32 lsr 6) lxor (de32 lsr 11) lxor (de32 lsr 25))
    + (y30 lxor (y32 land (y31 lxor y30)))
    + 666307205 + w32
  in
  let da32 = x32 lor (x32 lsl 32) in
  let t32 = x32 lxor x31 in
  let t2_32 =
    ((da32 lsr 2) lxor (da32 lsr 13) lxor (da32 lsr 22))
    + (x31 lxor (t32 land t31))
  in
  let x33 = (t1_32 + t2_32) land msk in
  let y33 = (x29 + t1_32) land msk in
  let p49 = w34 lor (w34 lsl 32) in
  let q49 = w47 lor (w47 lsl 32) in
  let w49 =
    (w33 + ((p49 lsr 7) lxor (p49 lsr 18) lxor (w34 lsr 3))
    + w42 + ((q49 lsr 17) lxor (q49 lsr 19) lxor (w47 lsr 10)))
    land msk
  in
  let de33 = y33 lor (y33 lsl 32) in
  let t1_33 =
    y30
    + ((de33 lsr 6) lxor (de33 lsr 11) lxor (de33 lsr 25))
    + (y31 lxor (y33 land (y32 lxor y31)))
    + 773529912 + w33
  in
  let da33 = x33 lor (x33 lsl 32) in
  let t33 = x33 lxor x32 in
  let t2_33 =
    ((da33 lsr 2) lxor (da33 lsr 13) lxor (da33 lsr 22))
    + (x32 lxor (t33 land t32))
  in
  let x34 = (t1_33 + t2_33) land msk in
  let y34 = (x30 + t1_33) land msk in
  let p50 = w35 lor (w35 lsl 32) in
  let q50 = w48 lor (w48 lsl 32) in
  let w50 =
    (w34 + ((p50 lsr 7) lxor (p50 lsr 18) lxor (w35 lsr 3))
    + w43 + ((q50 lsr 17) lxor (q50 lsr 19) lxor (w48 lsr 10)))
    land msk
  in
  let de34 = y34 lor (y34 lsl 32) in
  let t1_34 =
    y31
    + ((de34 lsr 6) lxor (de34 lsr 11) lxor (de34 lsr 25))
    + (y32 lxor (y34 land (y33 lxor y32)))
    + 1294757372 + w34
  in
  let da34 = x34 lor (x34 lsl 32) in
  let t34 = x34 lxor x33 in
  let t2_34 =
    ((da34 lsr 2) lxor (da34 lsr 13) lxor (da34 lsr 22))
    + (x33 lxor (t34 land t33))
  in
  let x35 = (t1_34 + t2_34) land msk in
  let y35 = (x31 + t1_34) land msk in
  let p51 = w36 lor (w36 lsl 32) in
  let q51 = w49 lor (w49 lsl 32) in
  let w51 =
    (w35 + ((p51 lsr 7) lxor (p51 lsr 18) lxor (w36 lsr 3))
    + w44 + ((q51 lsr 17) lxor (q51 lsr 19) lxor (w49 lsr 10)))
    land msk
  in
  let de35 = y35 lor (y35 lsl 32) in
  let t1_35 =
    y32
    + ((de35 lsr 6) lxor (de35 lsr 11) lxor (de35 lsr 25))
    + (y33 lxor (y35 land (y34 lxor y33)))
    + 1396182291 + w35
  in
  let da35 = x35 lor (x35 lsl 32) in
  let t35 = x35 lxor x34 in
  let t2_35 =
    ((da35 lsr 2) lxor (da35 lsr 13) lxor (da35 lsr 22))
    + (x34 lxor (t35 land t34))
  in
  let x36 = (t1_35 + t2_35) land msk in
  let y36 = (x32 + t1_35) land msk in
  let p52 = w37 lor (w37 lsl 32) in
  let q52 = w50 lor (w50 lsl 32) in
  let w52 =
    (w36 + ((p52 lsr 7) lxor (p52 lsr 18) lxor (w37 lsr 3))
    + w45 + ((q52 lsr 17) lxor (q52 lsr 19) lxor (w50 lsr 10)))
    land msk
  in
  let de36 = y36 lor (y36 lsl 32) in
  let t1_36 =
    y33
    + ((de36 lsr 6) lxor (de36 lsr 11) lxor (de36 lsr 25))
    + (y34 lxor (y36 land (y35 lxor y34)))
    + 1695183700 + w36
  in
  let da36 = x36 lor (x36 lsl 32) in
  let t36 = x36 lxor x35 in
  let t2_36 =
    ((da36 lsr 2) lxor (da36 lsr 13) lxor (da36 lsr 22))
    + (x35 lxor (t36 land t35))
  in
  let x37 = (t1_36 + t2_36) land msk in
  let y37 = (x33 + t1_36) land msk in
  let p53 = w38 lor (w38 lsl 32) in
  let q53 = w51 lor (w51 lsl 32) in
  let w53 =
    (w37 + ((p53 lsr 7) lxor (p53 lsr 18) lxor (w38 lsr 3))
    + w46 + ((q53 lsr 17) lxor (q53 lsr 19) lxor (w51 lsr 10)))
    land msk
  in
  let de37 = y37 lor (y37 lsl 32) in
  let t1_37 =
    y34
    + ((de37 lsr 6) lxor (de37 lsr 11) lxor (de37 lsr 25))
    + (y35 lxor (y37 land (y36 lxor y35)))
    + 1986661051 + w37
  in
  let da37 = x37 lor (x37 lsl 32) in
  let t37 = x37 lxor x36 in
  let t2_37 =
    ((da37 lsr 2) lxor (da37 lsr 13) lxor (da37 lsr 22))
    + (x36 lxor (t37 land t36))
  in
  let x38 = (t1_37 + t2_37) land msk in
  let y38 = (x34 + t1_37) land msk in
  let p54 = w39 lor (w39 lsl 32) in
  let q54 = w52 lor (w52 lsl 32) in
  let w54 =
    (w38 + ((p54 lsr 7) lxor (p54 lsr 18) lxor (w39 lsr 3))
    + w47 + ((q54 lsr 17) lxor (q54 lsr 19) lxor (w52 lsr 10)))
    land msk
  in
  let de38 = y38 lor (y38 lsl 32) in
  let t1_38 =
    y35
    + ((de38 lsr 6) lxor (de38 lsr 11) lxor (de38 lsr 25))
    + (y36 lxor (y38 land (y37 lxor y36)))
    + (-2117940946) + w38
  in
  let da38 = x38 lor (x38 lsl 32) in
  let t38 = x38 lxor x37 in
  let t2_38 =
    ((da38 lsr 2) lxor (da38 lsr 13) lxor (da38 lsr 22))
    + (x37 lxor (t38 land t37))
  in
  let x39 = (t1_38 + t2_38) land msk in
  let y39 = (x35 + t1_38) land msk in
  let p55 = w40 lor (w40 lsl 32) in
  let q55 = w53 lor (w53 lsl 32) in
  let w55 =
    (w39 + ((p55 lsr 7) lxor (p55 lsr 18) lxor (w40 lsr 3))
    + w48 + ((q55 lsr 17) lxor (q55 lsr 19) lxor (w53 lsr 10)))
    land msk
  in
  let de39 = y39 lor (y39 lsl 32) in
  let t1_39 =
    y36
    + ((de39 lsr 6) lxor (de39 lsr 11) lxor (de39 lsr 25))
    + (y37 lxor (y39 land (y38 lxor y37)))
    + (-1838011259) + w39
  in
  let da39 = x39 lor (x39 lsl 32) in
  let t39 = x39 lxor x38 in
  let t2_39 =
    ((da39 lsr 2) lxor (da39 lsr 13) lxor (da39 lsr 22))
    + (x38 lxor (t39 land t38))
  in
  let x40 = (t1_39 + t2_39) land msk in
  let y40 = (x36 + t1_39) land msk in
  let p56 = w41 lor (w41 lsl 32) in
  let q56 = w54 lor (w54 lsl 32) in
  let w56 =
    (w40 + ((p56 lsr 7) lxor (p56 lsr 18) lxor (w41 lsr 3))
    + w49 + ((q56 lsr 17) lxor (q56 lsr 19) lxor (w54 lsr 10)))
    land msk
  in
  let de40 = y40 lor (y40 lsl 32) in
  let t1_40 =
    y37
    + ((de40 lsr 6) lxor (de40 lsr 11) lxor (de40 lsr 25))
    + (y38 lxor (y40 land (y39 lxor y38)))
    + (-1564481375) + w40
  in
  let da40 = x40 lor (x40 lsl 32) in
  let t40 = x40 lxor x39 in
  let t2_40 =
    ((da40 lsr 2) lxor (da40 lsr 13) lxor (da40 lsr 22))
    + (x39 lxor (t40 land t39))
  in
  let x41 = (t1_40 + t2_40) land msk in
  let y41 = (x37 + t1_40) land msk in
  let p57 = w42 lor (w42 lsl 32) in
  let q57 = w55 lor (w55 lsl 32) in
  let w57 =
    (w41 + ((p57 lsr 7) lxor (p57 lsr 18) lxor (w42 lsr 3))
    + w50 + ((q57 lsr 17) lxor (q57 lsr 19) lxor (w55 lsr 10)))
    land msk
  in
  let de41 = y41 lor (y41 lsl 32) in
  let t1_41 =
    y38
    + ((de41 lsr 6) lxor (de41 lsr 11) lxor (de41 lsr 25))
    + (y39 lxor (y41 land (y40 lxor y39)))
    + (-1474664885) + w41
  in
  let da41 = x41 lor (x41 lsl 32) in
  let t41 = x41 lxor x40 in
  let t2_41 =
    ((da41 lsr 2) lxor (da41 lsr 13) lxor (da41 lsr 22))
    + (x40 lxor (t41 land t40))
  in
  let x42 = (t1_41 + t2_41) land msk in
  let y42 = (x38 + t1_41) land msk in
  let p58 = w43 lor (w43 lsl 32) in
  let q58 = w56 lor (w56 lsl 32) in
  let w58 =
    (w42 + ((p58 lsr 7) lxor (p58 lsr 18) lxor (w43 lsr 3))
    + w51 + ((q58 lsr 17) lxor (q58 lsr 19) lxor (w56 lsr 10)))
    land msk
  in
  let de42 = y42 lor (y42 lsl 32) in
  let t1_42 =
    y39
    + ((de42 lsr 6) lxor (de42 lsr 11) lxor (de42 lsr 25))
    + (y40 lxor (y42 land (y41 lxor y40)))
    + (-1035236496) + w42
  in
  let da42 = x42 lor (x42 lsl 32) in
  let t42 = x42 lxor x41 in
  let t2_42 =
    ((da42 lsr 2) lxor (da42 lsr 13) lxor (da42 lsr 22))
    + (x41 lxor (t42 land t41))
  in
  let x43 = (t1_42 + t2_42) land msk in
  let y43 = (x39 + t1_42) land msk in
  let p59 = w44 lor (w44 lsl 32) in
  let q59 = w57 lor (w57 lsl 32) in
  let w59 =
    (w43 + ((p59 lsr 7) lxor (p59 lsr 18) lxor (w44 lsr 3))
    + w52 + ((q59 lsr 17) lxor (q59 lsr 19) lxor (w57 lsr 10)))
    land msk
  in
  let de43 = y43 lor (y43 lsl 32) in
  let t1_43 =
    y40
    + ((de43 lsr 6) lxor (de43 lsr 11) lxor (de43 lsr 25))
    + (y41 lxor (y43 land (y42 lxor y41)))
    + (-949202525) + w43
  in
  let da43 = x43 lor (x43 lsl 32) in
  let t43 = x43 lxor x42 in
  let t2_43 =
    ((da43 lsr 2) lxor (da43 lsr 13) lxor (da43 lsr 22))
    + (x42 lxor (t43 land t42))
  in
  let x44 = (t1_43 + t2_43) land msk in
  let y44 = (x40 + t1_43) land msk in
  let p60 = w45 lor (w45 lsl 32) in
  let q60 = w58 lor (w58 lsl 32) in
  let w60 =
    (w44 + ((p60 lsr 7) lxor (p60 lsr 18) lxor (w45 lsr 3))
    + w53 + ((q60 lsr 17) lxor (q60 lsr 19) lxor (w58 lsr 10)))
    land msk
  in
  let de44 = y44 lor (y44 lsl 32) in
  let t1_44 =
    y41
    + ((de44 lsr 6) lxor (de44 lsr 11) lxor (de44 lsr 25))
    + (y42 lxor (y44 land (y43 lxor y42)))
    + (-778901479) + w44
  in
  let da44 = x44 lor (x44 lsl 32) in
  let t44 = x44 lxor x43 in
  let t2_44 =
    ((da44 lsr 2) lxor (da44 lsr 13) lxor (da44 lsr 22))
    + (x43 lxor (t44 land t43))
  in
  let x45 = (t1_44 + t2_44) land msk in
  let y45 = (x41 + t1_44) land msk in
  let p61 = w46 lor (w46 lsl 32) in
  let q61 = w59 lor (w59 lsl 32) in
  let w61 =
    (w45 + ((p61 lsr 7) lxor (p61 lsr 18) lxor (w46 lsr 3))
    + w54 + ((q61 lsr 17) lxor (q61 lsr 19) lxor (w59 lsr 10)))
    land msk
  in
  let de45 = y45 lor (y45 lsl 32) in
  let t1_45 =
    y42
    + ((de45 lsr 6) lxor (de45 lsr 11) lxor (de45 lsr 25))
    + (y43 lxor (y45 land (y44 lxor y43)))
    + (-694614492) + w45
  in
  let da45 = x45 lor (x45 lsl 32) in
  let t45 = x45 lxor x44 in
  let t2_45 =
    ((da45 lsr 2) lxor (da45 lsr 13) lxor (da45 lsr 22))
    + (x44 lxor (t45 land t44))
  in
  let x46 = (t1_45 + t2_45) land msk in
  let y46 = (x42 + t1_45) land msk in
  let p62 = w47 lor (w47 lsl 32) in
  let q62 = w60 lor (w60 lsl 32) in
  let w62 =
    (w46 + ((p62 lsr 7) lxor (p62 lsr 18) lxor (w47 lsr 3))
    + w55 + ((q62 lsr 17) lxor (q62 lsr 19) lxor (w60 lsr 10)))
    land msk
  in
  let de46 = y46 lor (y46 lsl 32) in
  let t1_46 =
    y43
    + ((de46 lsr 6) lxor (de46 lsr 11) lxor (de46 lsr 25))
    + (y44 lxor (y46 land (y45 lxor y44)))
    + (-200395387) + w46
  in
  let da46 = x46 lor (x46 lsl 32) in
  let t46 = x46 lxor x45 in
  let t2_46 =
    ((da46 lsr 2) lxor (da46 lsr 13) lxor (da46 lsr 22))
    + (x45 lxor (t46 land t45))
  in
  let x47 = (t1_46 + t2_46) land msk in
  let y47 = (x43 + t1_46) land msk in
  let p63 = w48 lor (w48 lsl 32) in
  let q63 = w61 lor (w61 lsl 32) in
  let w63 =
    (w47 + ((p63 lsr 7) lxor (p63 lsr 18) lxor (w48 lsr 3))
    + w56 + ((q63 lsr 17) lxor (q63 lsr 19) lxor (w61 lsr 10)))
    land msk
  in
  let de47 = y47 lor (y47 lsl 32) in
  let t1_47 =
    y44
    + ((de47 lsr 6) lxor (de47 lsr 11) lxor (de47 lsr 25))
    + (y45 lxor (y47 land (y46 lxor y45)))
    + 275423344 + w47
  in
  let da47 = x47 lor (x47 lsl 32) in
  let t47 = x47 lxor x46 in
  let t2_47 =
    ((da47 lsr 2) lxor (da47 lsr 13) lxor (da47 lsr 22))
    + (x46 lxor (t47 land t46))
  in
  let x48 = (t1_47 + t2_47) land msk in
  let y48 = (x44 + t1_47) land msk in
  let de48 = y48 lor (y48 lsl 32) in
  let t1_48 =
    y45
    + ((de48 lsr 6) lxor (de48 lsr 11) lxor (de48 lsr 25))
    + (y46 lxor (y48 land (y47 lxor y46)))
    + 430227734 + w48
  in
  let da48 = x48 lor (x48 lsl 32) in
  let t48 = x48 lxor x47 in
  let t2_48 =
    ((da48 lsr 2) lxor (da48 lsr 13) lxor (da48 lsr 22))
    + (x47 lxor (t48 land t47))
  in
  let x49 = (t1_48 + t2_48) land msk in
  let y49 = (x45 + t1_48) land msk in
  let de49 = y49 lor (y49 lsl 32) in
  let t1_49 =
    y46
    + ((de49 lsr 6) lxor (de49 lsr 11) lxor (de49 lsr 25))
    + (y47 lxor (y49 land (y48 lxor y47)))
    + 506948616 + w49
  in
  let da49 = x49 lor (x49 lsl 32) in
  let t49 = x49 lxor x48 in
  let t2_49 =
    ((da49 lsr 2) lxor (da49 lsr 13) lxor (da49 lsr 22))
    + (x48 lxor (t49 land t48))
  in
  let x50 = (t1_49 + t2_49) land msk in
  let y50 = (x46 + t1_49) land msk in
  let de50 = y50 lor (y50 lsl 32) in
  let t1_50 =
    y47
    + ((de50 lsr 6) lxor (de50 lsr 11) lxor (de50 lsr 25))
    + (y48 lxor (y50 land (y49 lxor y48)))
    + 659060556 + w50
  in
  let da50 = x50 lor (x50 lsl 32) in
  let t50 = x50 lxor x49 in
  let t2_50 =
    ((da50 lsr 2) lxor (da50 lsr 13) lxor (da50 lsr 22))
    + (x49 lxor (t50 land t49))
  in
  let x51 = (t1_50 + t2_50) land msk in
  let y51 = (x47 + t1_50) land msk in
  let de51 = y51 lor (y51 lsl 32) in
  let t1_51 =
    y48
    + ((de51 lsr 6) lxor (de51 lsr 11) lxor (de51 lsr 25))
    + (y49 lxor (y51 land (y50 lxor y49)))
    + 883997877 + w51
  in
  let da51 = x51 lor (x51 lsl 32) in
  let t51 = x51 lxor x50 in
  let t2_51 =
    ((da51 lsr 2) lxor (da51 lsr 13) lxor (da51 lsr 22))
    + (x50 lxor (t51 land t50))
  in
  let x52 = (t1_51 + t2_51) land msk in
  let y52 = (x48 + t1_51) land msk in
  let de52 = y52 lor (y52 lsl 32) in
  let t1_52 =
    y49
    + ((de52 lsr 6) lxor (de52 lsr 11) lxor (de52 lsr 25))
    + (y50 lxor (y52 land (y51 lxor y50)))
    + 958139571 + w52
  in
  let da52 = x52 lor (x52 lsl 32) in
  let t52 = x52 lxor x51 in
  let t2_52 =
    ((da52 lsr 2) lxor (da52 lsr 13) lxor (da52 lsr 22))
    + (x51 lxor (t52 land t51))
  in
  let x53 = (t1_52 + t2_52) land msk in
  let y53 = (x49 + t1_52) land msk in
  let de53 = y53 lor (y53 lsl 32) in
  let t1_53 =
    y50
    + ((de53 lsr 6) lxor (de53 lsr 11) lxor (de53 lsr 25))
    + (y51 lxor (y53 land (y52 lxor y51)))
    + 1322822218 + w53
  in
  let da53 = x53 lor (x53 lsl 32) in
  let t53 = x53 lxor x52 in
  let t2_53 =
    ((da53 lsr 2) lxor (da53 lsr 13) lxor (da53 lsr 22))
    + (x52 lxor (t53 land t52))
  in
  let x54 = (t1_53 + t2_53) land msk in
  let y54 = (x50 + t1_53) land msk in
  let de54 = y54 lor (y54 lsl 32) in
  let t1_54 =
    y51
    + ((de54 lsr 6) lxor (de54 lsr 11) lxor (de54 lsr 25))
    + (y52 lxor (y54 land (y53 lxor y52)))
    + 1537002063 + w54
  in
  let da54 = x54 lor (x54 lsl 32) in
  let t54 = x54 lxor x53 in
  let t2_54 =
    ((da54 lsr 2) lxor (da54 lsr 13) lxor (da54 lsr 22))
    + (x53 lxor (t54 land t53))
  in
  let x55 = (t1_54 + t2_54) land msk in
  let y55 = (x51 + t1_54) land msk in
  let de55 = y55 lor (y55 lsl 32) in
  let t1_55 =
    y52
    + ((de55 lsr 6) lxor (de55 lsr 11) lxor (de55 lsr 25))
    + (y53 lxor (y55 land (y54 lxor y53)))
    + 1747873779 + w55
  in
  let da55 = x55 lor (x55 lsl 32) in
  let t55 = x55 lxor x54 in
  let t2_55 =
    ((da55 lsr 2) lxor (da55 lsr 13) lxor (da55 lsr 22))
    + (x54 lxor (t55 land t54))
  in
  let x56 = (t1_55 + t2_55) land msk in
  let y56 = (x52 + t1_55) land msk in
  let de56 = y56 lor (y56 lsl 32) in
  let t1_56 =
    y53
    + ((de56 lsr 6) lxor (de56 lsr 11) lxor (de56 lsr 25))
    + (y54 lxor (y56 land (y55 lxor y54)))
    + 1955562222 + w56
  in
  let da56 = x56 lor (x56 lsl 32) in
  let t56 = x56 lxor x55 in
  let t2_56 =
    ((da56 lsr 2) lxor (da56 lsr 13) lxor (da56 lsr 22))
    + (x55 lxor (t56 land t55))
  in
  let x57 = (t1_56 + t2_56) land msk in
  let y57 = (x53 + t1_56) land msk in
  let de57 = y57 lor (y57 lsl 32) in
  let t1_57 =
    y54
    + ((de57 lsr 6) lxor (de57 lsr 11) lxor (de57 lsr 25))
    + (y55 lxor (y57 land (y56 lxor y55)))
    + 2024104815 + w57
  in
  let da57 = x57 lor (x57 lsl 32) in
  let t57 = x57 lxor x56 in
  let t2_57 =
    ((da57 lsr 2) lxor (da57 lsr 13) lxor (da57 lsr 22))
    + (x56 lxor (t57 land t56))
  in
  let x58 = (t1_57 + t2_57) land msk in
  let y58 = (x54 + t1_57) land msk in
  let de58 = y58 lor (y58 lsl 32) in
  let t1_58 =
    y55
    + ((de58 lsr 6) lxor (de58 lsr 11) lxor (de58 lsr 25))
    + (y56 lxor (y58 land (y57 lxor y56)))
    + (-2067236844) + w58
  in
  let da58 = x58 lor (x58 lsl 32) in
  let t58 = x58 lxor x57 in
  let t2_58 =
    ((da58 lsr 2) lxor (da58 lsr 13) lxor (da58 lsr 22))
    + (x57 lxor (t58 land t57))
  in
  let x59 = (t1_58 + t2_58) land msk in
  let y59 = (x55 + t1_58) land msk in
  let de59 = y59 lor (y59 lsl 32) in
  let t1_59 =
    y56
    + ((de59 lsr 6) lxor (de59 lsr 11) lxor (de59 lsr 25))
    + (y57 lxor (y59 land (y58 lxor y57)))
    + (-1933114872) + w59
  in
  let da59 = x59 lor (x59 lsl 32) in
  let t59 = x59 lxor x58 in
  let t2_59 =
    ((da59 lsr 2) lxor (da59 lsr 13) lxor (da59 lsr 22))
    + (x58 lxor (t59 land t58))
  in
  let x60 = (t1_59 + t2_59) land msk in
  let y60 = (x56 + t1_59) land msk in
  let de60 = y60 lor (y60 lsl 32) in
  let t1_60 =
    y57
    + ((de60 lsr 6) lxor (de60 lsr 11) lxor (de60 lsr 25))
    + (y58 lxor (y60 land (y59 lxor y58)))
    + (-1866530822) + w60
  in
  let da60 = x60 lor (x60 lsl 32) in
  let t60 = x60 lxor x59 in
  let t2_60 =
    ((da60 lsr 2) lxor (da60 lsr 13) lxor (da60 lsr 22))
    + (x59 lxor (t60 land t59))
  in
  let x61 = (t1_60 + t2_60) land msk in
  let y61 = (x57 + t1_60) land msk in
  let de61 = y61 lor (y61 lsl 32) in
  let t1_61 =
    y58
    + ((de61 lsr 6) lxor (de61 lsr 11) lxor (de61 lsr 25))
    + (y59 lxor (y61 land (y60 lxor y59)))
    + (-1538233109) + w61
  in
  let da61 = x61 lor (x61 lsl 32) in
  let t61 = x61 lxor x60 in
  let t2_61 =
    ((da61 lsr 2) lxor (da61 lsr 13) lxor (da61 lsr 22))
    + (x60 lxor (t61 land t60))
  in
  let x62 = (t1_61 + t2_61) land msk in
  let y62 = (x58 + t1_61) land msk in
  let de62 = y62 lor (y62 lsl 32) in
  let t1_62 =
    y59
    + ((de62 lsr 6) lxor (de62 lsr 11) lxor (de62 lsr 25))
    + (y60 lxor (y62 land (y61 lxor y60)))
    + (-1090935817) + w62
  in
  let da62 = x62 lor (x62 lsl 32) in
  let t62 = x62 lxor x61 in
  let t2_62 =
    ((da62 lsr 2) lxor (da62 lsr 13) lxor (da62 lsr 22))
    + (x61 lxor (t62 land t61))
  in
  let x63 = (t1_62 + t2_62) land msk in
  let y63 = (x59 + t1_62) land msk in
  let de63 = y63 lor (y63 lsl 32) in
  let t1_63 =
    y60
    + ((de63 lsr 6) lxor (de63 lsr 11) lxor (de63 lsr 25))
    + (y61 lxor (y63 land (y62 lxor y61)))
    + (-965641998) + w63
  in
  let da63 = x63 lor (x63 lsl 32) in
  let t63 = x63 lxor x62 in
  let t2_63 =
    ((da63 lsr 2) lxor (da63 lsr 13) lxor (da63 lsr 22))
    + (x62 lxor (t63 land t62))
  in
  let x64 = (t1_63 + t2_63) land msk in
  let y64 = (x60 + t1_63) land msk in
  Array.unsafe_set hst 0 (Array.unsafe_get hst 0 + x64);
  Array.unsafe_set hst 1 (Array.unsafe_get hst 1 + x63);
  Array.unsafe_set hst 2 (Array.unsafe_get hst 2 + x62);
  Array.unsafe_set hst 3 (Array.unsafe_get hst 3 + x61);
  Array.unsafe_set hst 4 (Array.unsafe_get hst 4 + y64);
  Array.unsafe_set hst 5 (Array.unsafe_get hst 5 + y63);
  Array.unsafe_set hst 6 (Array.unsafe_get hst 6 + y62);
  Array.unsafe_set hst 7 (Array.unsafe_get hst 7 + y61)

let update_bytes ctx b pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Sha256.update_bytes: slice out of bounds";
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref pos and rem = ref len in
  if ctx.buf_len > 0 then begin
    let take = min (64 - ctx.buf_len) !rem in
    Bytes.blit b !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    rem := !rem - take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !rem >= 64 do
    compress ctx b !pos;
    pos := !pos + 64;
    rem := !rem - 64
  done;
  if !rem > 0 then begin
    Bytes.blit b !pos ctx.buf ctx.buf_len !rem;
    ctx.buf_len <- ctx.buf_len + !rem
  end

let update_substring ctx s pos len =
  update_bytes ctx (Bytes.unsafe_of_string s) pos len

let update ctx s = update_substring ctx s 0 (String.length s)

let finalize_into ctx dst pos =
  if pos < 0 || pos + 32 > Bytes.length dst then
    invalid_arg "Sha256.finalize_into: need 32 bytes of room";
  let bit_len = Int64.mul ctx.total 8L in
  (* Pad in the block buffer directly: 0x80, zeros, 64-bit length. *)
  Bytes.set ctx.buf ctx.buf_len '\x80';
  let fill = ctx.buf_len + 1 in
  if fill > 56 then begin
    Bytes.fill ctx.buf fill (64 - fill) '\000';
    compress ctx ctx.buf 0;
    Bytes.fill ctx.buf 0 56 '\000'
  end
  else Bytes.fill ctx.buf fill (56 - fill) '\000';
  for i = 0 to 7 do
    Bytes.set ctx.buf (56 + i)
      (Char.unsafe_chr (Int64.to_int (Int64.shift_right_logical bit_len (8 * (7 - i))) land 0xff))
  done;
  compress ctx ctx.buf 0;
  ctx.buf_len <- 0;
  for i = 0 to 7 do
    (* compress leaves garbage above bit 31; mask on the way out *)
    let v = ctx.h.(i) land mask in
    Bytes.set dst (pos + (4 * i)) (Char.unsafe_chr (v lsr 24));
    Bytes.set dst (pos + (4 * i) + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.set dst (pos + (4 * i) + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.set dst (pos + (4 * i) + 3) (Char.unsafe_chr (v land 0xff))
  done

let finalize ctx =
  let out = Bytes.create 32 in
  finalize_into ctx out 0;
  Bytes.unsafe_to_string out

(* One-shot digests reuse a domain-local context so the hot paths
   (evidence hashing, HMAC inner/outer, module measurements) never
   allocate per call. Domain-local rather than module-level because
   fleet shards hash concurrently; each domain pays one context
   allocation on its first digest, then the scratch conventions match
   the rest of this library. *)
let oneshot = Domain.DLS.new_key init

let digest s =
  let ctx = Domain.DLS.get oneshot in
  reset ctx;
  update ctx s;
  finalize ctx

let digest_into s dst pos =
  let ctx = Domain.DLS.get oneshot in
  reset ctx;
  update ctx s;
  finalize_into ctx dst pos

let digest_bytes b pos len =
  let ctx = Domain.DLS.get oneshot in
  reset ctx;
  update_bytes ctx b pos len;
  finalize ctx

let digest_list parts =
  let ctx = Domain.DLS.get oneshot in
  reset ctx;
  List.iter (update ctx) parts;
  finalize ctx

(* AES-GCM with table-driven GHASH (Shoup's 4-bit method).

   128-bit values are 4 big-endian 32-bit words in native ints, so the
   whole GHASH inner loop is unboxed. Per key, a 16-entry table of
   nibble multiples of the hash subkey H turns each block product into
   32 shift-and-xor steps instead of 128 conditional bit steps; the
   rem4 table folds the four bits shifted out of the reflected
   polynomial back in (coefficients of 0xE1 = x^128 + x^7 + x^2 + x + 1). *)

let mask32 = 0xffffffff

let rem4 =
  [| 0x0000; 0x1c20; 0x3840; 0x2460; 0x7080; 0x6ca0; 0x48c0; 0x54e0;
     0xe100; 0xfd20; 0xd940; 0xc560; 0x9180; 0x8da0; 0xa9c0; 0xb5e0 |]

(* Flat 16x4 table: entry j at t.(4j .. 4j+3) is (j as a 4-bit
   polynomial) * H, most significant word first. *)
type hkey = int array

let word_of s off =
  let get i = if off + i < String.length s then Char.code s.[off + i] else 0 in
  (get 0 lsl 24) lor (get 1 lsl 16) lor (get 2 lsl 8) lor get 3

(* Multiply by x in the reflected representation: shift right one bit,
   folding the dropped bit back via the 0xE1 reduction byte. *)
let mul_x w =
  let lsb = w.(3) land 1 in
  w.(3) <- (w.(3) lsr 1) lor ((w.(2) land 1) lsl 31);
  w.(2) <- (w.(2) lsr 1) lor ((w.(1) land 1) lsl 31);
  w.(1) <- (w.(1) lsr 1) lor ((w.(0) land 1) lsl 31);
  w.(0) <- (w.(0) lsr 1) lxor (lsb * 0xe1000000)

let build_htab h =
  let t = Array.make 64 0 in
  let w = [| word_of h 0; word_of h 4; word_of h 8; word_of h 12 |] in
  let set j = Array.blit w 0 t (4 * j) 4 in
  (* bit 3 of a nibble is the x^0 coefficient: entry 8 is H itself,
     entries 4, 2, 1 are H*x, H*x^2, H*x^3. *)
  set 8;
  mul_x w;
  set 4;
  mul_x w;
  set 2;
  mul_x w;
  set 1;
  List.iter
    (fun i ->
      for j = 1 to i - 1 do
        for k = 0 to 3 do
          t.((4 * (i + j)) + k) <- t.((4 * i) + k) lxor t.((4 * j) + k)
        done
      done)
    [ 2; 4; 8 ];
  t

(* z <- z * H. The nibbles of z are consumed most-reduced-first while
   the product accumulates in scratch; z is only overwritten at the
   end, so reading and accumulating never alias. The scratch block is
   domain-local (fleet shards GHASH concurrently) and fetched once per
   absorbed buffer, not per 16-byte block, so the hot loop still sees a
   plain array. *)
let gmul_scratch = Domain.DLS.new_key (fun () -> Array.make 4 0)

let gmul zs (t : hkey) (z : int array) =
  let d0 = 4 * (z.(3) land 0xf) in
  zs.(0) <- t.(d0);
  zs.(1) <- t.(d0 + 1);
  zs.(2) <- t.(d0 + 2);
  zs.(3) <- t.(d0 + 3);
  for k = 1 to 31 do
    let rem = zs.(3) land 0xf in
    zs.(3) <- (zs.(3) lsr 4) lor ((zs.(2) land 0xf) lsl 28);
    zs.(2) <- (zs.(2) lsr 4) lor ((zs.(1) land 0xf) lsl 28);
    zs.(1) <- (zs.(1) lsr 4) lor ((zs.(0) land 0xf) lsl 28);
    zs.(0) <- (zs.(0) lsr 4) lxor (Array.unsafe_get rem4 rem lsl 16);
    let d = 4 * ((z.(3 - (k lsr 3)) lsr (4 * (k land 7))) land 0xf) in
    zs.(0) <- zs.(0) lxor Array.unsafe_get t d;
    zs.(1) <- zs.(1) lxor Array.unsafe_get t (d + 1);
    zs.(2) <- zs.(2) lxor Array.unsafe_get t (d + 2);
    zs.(3) <- zs.(3) lxor Array.unsafe_get t (d + 3)
  done;
  Array.blit zs 0 z 0 4

(* Absorb a part as zero-padded 16-byte blocks, like the reference
   GHASH does per data part. *)
let ghash_absorb t z s =
  let zs = Domain.DLS.get gmul_scratch in
  let blocks = (String.length s + 15) / 16 in
  for i = 0 to blocks - 1 do
    let base = 16 * i in
    z.(0) <- z.(0) lxor word_of s base;
    z.(1) <- z.(1) lxor word_of s (base + 4);
    z.(2) <- z.(2) lxor word_of s (base + 8);
    z.(3) <- z.(3) lxor word_of s (base + 12);
    gmul zs t z
  done

let ghash t parts =
  let z = Array.make 4 0 in
  List.iter (ghash_absorb t z) parts;
  z

let string_of_words w =
  String.init 16 (fun i -> Char.chr ((w.(i lsr 2) lsr (8 * (3 - (i land 3)))) land 0xff))

let ghash_bytes ~h parts = string_of_words (ghash (build_htab h) parts)

let length_words aad_len ct_len =
  [| (8 * aad_len) lsr 32; (8 * aad_len) land mask32; (8 * ct_len) lsr 32;
     (8 * ct_len) land mask32 |]

let derive ~key ~iv =
  let aes = Aes.expand_key key in
  let t = build_htab (Aes.encrypt_block aes (String.make 16 '\000')) in
  let j0 =
    if String.length iv = 12 then
      [| word_of iv 0; word_of iv 4; word_of iv 8; 1 |]
    else begin
      if String.length iv = 0 then invalid_arg "Gcm: empty IV";
      let pad = (16 - (String.length iv mod 16)) mod 16 in
      let lenb = string_of_words (length_words 0 (String.length iv)) in
      ghash t [ iv ^ String.make pad '\000' ^ lenb ]
    end
  in
  (aes, t, j0)

let ctr_transform aes j0 input =
  let len = String.length input in
  let out = Bytes.create len in
  let counter = Array.copy j0 in
  let blocks = (len + 15) / 16 in
  for i = 0 to blocks - 1 do
    counter.(3) <- (counter.(3) + 1) land mask32;
    let keystream = Aes.encrypt_block aes (string_of_words counter) in
    let base = 16 * i in
    let n = min 16 (len - base) in
    for j = 0 to n - 1 do
      Bytes.unsafe_set out (base + j)
        (Char.unsafe_chr (Char.code input.[base + j] lxor Char.code keystream.[j]))
    done
  done;
  Bytes.unsafe_to_string out

let compute_tag aes t j0 ~aad ~ct =
  let z = Array.make 4 0 in
  ghash_absorb t z aad;
  ghash_absorb t z ct;
  ghash_absorb t z (string_of_words (length_words (String.length aad) (String.length ct)));
  let ek = Aes.encrypt_block aes (string_of_words j0) in
  for i = 0 to 3 do
    z.(i) <- z.(i) lxor word_of ek (4 * i)
  done;
  string_of_words z

let encrypt ~key ~iv ?(aad = "") plaintext =
  let aes, t, j0 = derive ~key ~iv in
  let ct = ctr_transform aes j0 plaintext in
  (ct, compute_tag aes t j0 ~aad ~ct)

let decrypt ~key ~iv ?(aad = "") ~tag ciphertext =
  let aes, t, j0 = derive ~key ~iv in
  let expected = compute_tag aes t j0 ~aad ~ct:ciphertext in
  (* Constant-time-style comparison: accumulate differences. *)
  let diff = ref (String.length tag lxor 16) in
  String.iteri
    (fun i c -> if i < 16 then diff := !diff lor (Char.code c lxor Char.code expected.[i]))
    tag;
  if !diff = 0 then Some (ctr_transform aes j0 ciphertext) else None

(** SHA-256 (FIPS 180-4) on native unboxed word arithmetic.

    Used for code measurements of Wasm bytecode, the evidence anchor,
    RFC 6979 nonce derivation, and Fortuna reseeding.

    The streaming API lets callers hash straight out of their own
    buffers ([update_bytes]/[update_substring]) and write digests into
    preallocated storage ([finalize_into]/[digest_into]), so the hot
    paths in [Hmac], [Kdf] and [Evidence] avoid intermediate copies.
    Contexts are not thread-safe; neither is the module (the message
    schedule is shared scratch). *)

type ctx

val init : unit -> ctx

val reset : ctx -> unit
(** Rewind a context to the freshly-initialised state, reusing its
    buffers. *)

val copy : ctx -> ctx
(** Snapshot a context mid-stream (e.g. a precomputed HMAC pad state). *)

val blit : ctx -> ctx -> unit
(** [blit src dst] overwrites [dst] with [src]'s state, allocation-free. *)

val update : ctx -> string -> unit
val update_substring : ctx -> string -> int -> int -> unit
val update_bytes : ctx -> Bytes.t -> int -> int -> unit

val finalize : ctx -> string
(** 32-byte digest. The context must not be reused afterwards unless
    {!reset} is called first. *)

val finalize_into : ctx -> Bytes.t -> int -> unit
(** Writes the 32-byte digest at the given offset. *)

val digest : string -> string
(** One-shot hash of a whole string. *)

val digest_into : string -> Bytes.t -> int -> unit
val digest_bytes : Bytes.t -> int -> int -> string

val digest_list : string list -> string
(** Hash of the concatenation of the list, without materializing it. *)

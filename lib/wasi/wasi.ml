(** WASI snapshot-preview1 for WaTZ (§III, §V).

    The adaptation layer between Wasm applications and the trusted OS:
    WASI calls are mapped onto the GP-API facilities of the simulated
    OP-TEE (or onto plain normal-world facilities when the same module
    runs under the WAMR-equivalent runtime). Mirroring the paper's
    prototype, {e all 45} preview1 entry points are registered; the
    ones the experiments do not need return [ENOSYS] ("we first
    manually coded dummy functions for all 45 WASI API functions").

    The environment is engine-agnostic: {!bindings} produces neutral
    host-function specs that adapt to both the interpreter and the AOT
    engine. *)

module T = Watz_wasm.Types
module A = Watz_wasm.Ast
module Mem = Watz_wasm.Instance.Memory

exception Proc_exit of int

(* WASI errno values (subset). *)
let errno_success = 0
let errno_badf = 8
let errno_inval = 28
let errno_nosys = 52

type env = {
  mutable memory : Mem.t option; (* wired post-instantiation *)
  args : string list;
  environ : (string * string) list;
  clock_ns : unit -> int64;
  random : int -> string;
  write_out : string -> unit;
  mutable exit_code : int option;
}

let make_env ?(args = [ "app.wasm" ]) ?(environ = []) ~clock_ns ~random ~write_out () =
  { memory = None; args; environ; clock_ns; random; write_out; exit_code = None }

let memory env =
  match env.memory with
  | Some m -> m
  | None -> raise (Watz_wasm.Instance.Trap "WASI: no memory attached")

let i32_arg args i =
  match args.(i) with
  | A.VI32 v -> Int32.to_int v land 0xffffffff
  | A.VI64 _ | A.VF32 _ | A.VF64 _ -> raise (Watz_wasm.Instance.Trap "WASI: expected i32")

let ok = [ A.VI32 0l ]
let errno e = [ A.VI32 (Int32.of_int e) ]

type spec = {
  fn_name : string;
  fn_params : T.valtype list;
  fn_results : T.valtype list;
  fn_impl : env -> A.value array -> A.value list;
}

let environ_strings env = List.map (fun (k, v) -> k ^ "=" ^ v) env.environ

let write_string_list env ~ptrs_at ~buf_at strings =
  let mem = memory env in
  let buf = ref buf_at in
  List.iteri
    (fun i s ->
      Mem.store32 mem (ptrs_at + (4 * i)) (Int32.of_int !buf);
      Mem.store_string mem !buf (s ^ "\000");
      buf := !buf + String.length s + 1)
    strings

let sizes_impl strings env args =
  let mem = memory env in
  let count_ptr = i32_arg args 0 and size_ptr = i32_arg args 1 in
  let ss = strings env in
  Mem.store32 mem count_ptr (Int32.of_int (List.length ss));
  Mem.store32 mem size_ptr
    (Int32.of_int (List.fold_left (fun a s -> a + String.length s + 1) 0 ss));
  ok

let get_impl strings env args =
  write_string_list env ~ptrs_at:(i32_arg args 0) ~buf_at:(i32_arg args 1) (strings env);
  ok

let clock_time_get env args =
  let mem = memory env in
  (* arg 0: clock id; arg 1: precision (i64); arg 2: out pointer *)
  let out = i32_arg args 2 in
  Mem.store64 mem out (env.clock_ns ());
  ok

let clock_res_get env args =
  let mem = memory env in
  Mem.store64 mem (i32_arg args 1) 1L;
  ok

let fd_write env args =
  let mem = memory env in
  let fd = i32_arg args 0 in
  if fd <> 1 && fd <> 2 then errno errno_badf
  else begin
    let iovs = i32_arg args 1 and iovs_len = i32_arg args 2 and nwritten = i32_arg args 3 in
    let total = ref 0 in
    for k = 0 to iovs_len - 1 do
      let ptr = Int32.to_int (Mem.load32 mem (iovs + (8 * k))) land 0xffffffff in
      let len = Int32.to_int (Mem.load32 mem (iovs + (8 * k) + 4)) land 0xffffffff in
      env.write_out (Mem.load_string mem ptr len);
      total := !total + len
    done;
    Mem.store32 mem nwritten (Int32.of_int !total);
    ok
  end

let fd_read env args =
  let mem = memory env in
  let fd = i32_arg args 0 in
  if fd <> 0 then errno errno_badf
  else begin
    (* Empty stdin: report zero bytes read. *)
    Mem.store32 mem (i32_arg args 3) 0l;
    ok
  end

let random_get env args =
  let mem = memory env in
  let buf = i32_arg args 0 and len = i32_arg args 1 in
  Mem.store_string mem buf (env.random len);
  ok

let proc_exit _env args = raise (Proc_exit (i32_arg args 0))

let fd_fdstat_get env args =
  let mem = memory env in
  let out = i32_arg args 1 in
  (* filetype = character_device(2), flags 0, rights all. *)
  Mem.store8 mem out 2;
  Mem.store8 mem (out + 1) 0;
  Mem.store16 mem (out + 2) 0;
  Mem.store32 mem (out + 4) 0l;
  Mem.store64 mem (out + 8) (-1L);
  Mem.store64 mem (out + 16) (-1L);
  ok

let i = T.I32
let l = T.I64

let implemented =
  [
    ("args_sizes_get", [ i; i ], [ i ], sizes_impl (fun env -> env.args));
    ("args_get", [ i; i ], [ i ], get_impl (fun env -> env.args));
    ("environ_sizes_get", [ i; i ], [ i ], sizes_impl environ_strings);
    ("environ_get", [ i; i ], [ i ], get_impl environ_strings);
    ("clock_time_get", [ i; l; i ], [ i ], clock_time_get);
    ("clock_res_get", [ i; i ], [ i ], clock_res_get);
    ("fd_write", [ i; i; i; i ], [ i ], fd_write);
    ("fd_read", [ i; i; i; i ], [ i ], fd_read);
    ("fd_close", [ i ], [ i ], fun _ _ -> ok);
    ("fd_fdstat_get", [ i; i ], [ i ], fd_fdstat_get);
    ("fd_seek", [ i; l; i; i ], [ i ], fun _ _ -> errno errno_badf);
    ("fd_prestat_get", [ i; i ], [ i ], fun _ _ -> errno errno_badf);
    ("fd_prestat_dir_name", [ i; i; i ], [ i ], fun _ _ -> errno errno_badf);
    ("random_get", [ i; i ], [ i ], random_get);
    ("proc_exit", [ i ], [], proc_exit);
    ("sched_yield", [], [ i ], fun _ _ -> ok);
  ]

(* The remaining preview1 surface: registered, unsupported, ENOSYS —
   the paper's "dummy functions throwing exceptions", softened to the
   WASI-idiomatic errno. *)
let stubs =
  [
    ("fd_advise", [ i; l; l; i ], [ i ]);
    ("fd_allocate", [ i; l; l ], [ i ]);
    ("fd_datasync", [ i ], [ i ]);
    ("fd_fdstat_set_flags", [ i; i ], [ i ]);
    ("fd_fdstat_set_rights", [ i; l; l ], [ i ]);
    ("fd_filestat_get", [ i; i ], [ i ]);
    ("fd_filestat_set_size", [ i; l ], [ i ]);
    ("fd_filestat_set_times", [ i; l; l; i ], [ i ]);
    ("fd_pread", [ i; i; i; l; i ], [ i ]);
    ("fd_pwrite", [ i; i; i; l; i ], [ i ]);
    ("fd_readdir", [ i; i; i; l; i ], [ i ]);
    ("fd_renumber", [ i; i ], [ i ]);
    ("fd_sync", [ i ], [ i ]);
    ("fd_tell", [ i; i ], [ i ]);
    ("path_create_directory", [ i; i; i ], [ i ]);
    ("path_filestat_get", [ i; i; i; i; i ], [ i ]);
    ("path_filestat_set_times", [ i; i; i; i; l; l; i ], [ i ]);
    ("path_link", [ i; i; i; i; i; i; i ], [ i ]);
    ("path_open", [ i; i; i; i; i; l; l; i; i ], [ i ]);
    ("path_readlink", [ i; i; i; i; i; i ], [ i ]);
    ("path_remove_directory", [ i; i; i ], [ i ]);
    ("path_rename", [ i; i; i; i; i; i ], [ i ]);
    ("path_symlink", [ i; i; i; i; i ], [ i ]);
    ("path_unlink_file", [ i; i; i ], [ i ]);
    ("poll_oneoff", [ i; i; i; i ], [ i ]);
    ("proc_raise", [ i ], [ i ]);
    ("sock_recv", [ i; i; i; i; i; i ], [ i ]);
    ("sock_send", [ i; i; i; i; i ], [ i ]);
    ("sock_shutdown", [ i; i ], [ i ]);
  ]

let module_name = "wasi_snapshot_preview1"

(** All registered entry points as neutral specs. *)
let bindings : spec list =
  List.map
    (fun (fn_name, fn_params, fn_results, fn_impl) -> { fn_name; fn_params; fn_results; fn_impl })
    implemented
  @ List.map
      (fun (fn_name, fn_params, fn_results) ->
        { fn_name; fn_params; fn_results; fn_impl = (fun _ _ -> errno errno_nosys) })
      stubs

let registered_count = List.length bindings

(* Engine adapters. *)

let aot_imports env : Watz_wasm.Aot.import_binding list =
  List.map
    (fun s ->
      Watz_wasm.Aot.host ~module_:module_name ~name:s.fn_name ~params:s.fn_params
        ~results:s.fn_results (s.fn_impl env))
    bindings

let interp_imports env =
  List.map
    (fun s ->
      ( module_name,
        s.fn_name,
        Watz_wasm.Instance.Extern_func
          (Watz_wasm.Instance.host_func ~name:s.fn_name ~params:s.fn_params
             ~results:s.fn_results (s.fn_impl env)) ))
    bindings

let fast_imports env : Watz_wasm.Fastinterp.import_binding list =
  List.map
    (fun s ->
      Watz_wasm.Fastinterp.host ~module_:module_name ~name:s.fn_name ~params:s.fn_params
        ~results:s.fn_results (s.fn_impl env))
    bindings

(** Attach the instance's exported memory to the environment (must run
    before the first WASI call). *)
let attach_aot_memory env inst =
  env.memory <- Watz_wasm.Aot.export_memory inst "memory"

let attach_interp_memory env inst =
  env.memory <- Watz_wasm.Instance.export_memory inst "memory"

let attach_fast_memory env inst =
  env.memory <- Watz_wasm.Fastinterp.export_memory inst "memory"

(** WASI-RA: the paper's WASI extension for remote attestation (§V).

    Exposes the functions that let a hosted Wasm application drive the
    attestation flow, with evidence generation deliberately decoupled
    from the transport:

    - [collect_quote] / [dispose_quote] — issue evidence for an anchor
      through the kernel attestation service (returned as an opaque
      handle, readable with [quote_len]/[quote_read]);
    - [net_handshake] — connect to a verifier, exchange msg0/msg1,
      yielding a context handle and the 32-byte session anchor;
    - [net_send_quote] — send msg2 built from a collected quote;
    - [net_receive_data] — receive and decrypt the msg3 secret blob;
    - [net_dispose] — tear the context down.

    All socket traffic crosses to the normal-world supplicant; a [pump]
    callback lets the embedder run the normal-world verifier listener
    between secure-world steps (the simulator's stand-in for OS
    scheduling). *)

module T = Watz_wasm.Types
module A = Watz_wasm.Ast
module Mem = Watz_wasm.Instance.Memory

let errno_inval = 28
let errno_badhandle = 8
let errno_proto = 71
let errno_conn = 61
let errno_again = 6

type ra_session = {
  attester : Watz_attest.Protocol.Attester.t;
  conn : Watz_tz.Net.conn;
  anchor : string;
  mutable blob : string option;
}

type env = {
  os : Watz_tz.Optee.t;
  claim : string; (* measurement of the running Wasm app, set by the runtime *)
  random : int -> string;
  pump : unit -> unit;
  quotes : (int, string) Hashtbl.t;
  sessions : (int, ra_session) Hashtbl.t;
  mutable next_handle : int;
  wasi : Wasi.env;
}

let make_env ~os ~claim ~random ?(pump = fun () -> ()) wasi =
  {
    os;
    claim;
    random;
    pump;
    quotes = Hashtbl.create 4;
    sessions = Hashtbl.create 4;
    next_handle = 1;
    wasi;
  }

let memory env = Wasi.memory env.wasi
let i32_arg = Wasi.i32_arg
let errno e = [ A.VI32 (Int32.of_int e) ]
let ok = [ A.VI32 0l ]

let fresh_handle env =
  let h = env.next_handle in
  env.next_handle <- h + 1;
  h

let issue env ~anchor =
  Watz_attest.Evidence.encode
    (Watz_attest.Service.request_issue env.os ~anchor ~claim:env.claim)

(* wasi_ra_collect_quote(anchor_ptr, anchor_len, handle_out) *)
let collect_quote env args =
  let mem = memory env in
  let anchor_ptr = i32_arg args 0 and anchor_len = i32_arg args 1 in
  if anchor_len <> 32 then errno errno_inval
  else begin
    let anchor = Mem.load_string mem anchor_ptr 32 in
    let evidence = issue env ~anchor in
    let h = fresh_handle env in
    Hashtbl.replace env.quotes h evidence;
    Mem.store32 mem (i32_arg args 2) (Int32.of_int h);
    ok
  end

let dispose_quote env args =
  let h = i32_arg args 0 in
  if Hashtbl.mem env.quotes h then begin
    Hashtbl.remove env.quotes h;
    ok
  end
  else errno errno_badhandle

(* wasi_ra_quote_len(handle, len_out) *)
let quote_len env args =
  match Hashtbl.find_opt env.quotes (i32_arg args 0) with
  | None -> errno errno_badhandle
  | Some q ->
    Mem.store32 (memory env) (i32_arg args 1) (Int32.of_int (String.length q));
    ok

(* wasi_ra_quote_read(handle, buf, buf_len) *)
let quote_read env args =
  match Hashtbl.find_opt env.quotes (i32_arg args 0) with
  | None -> errno errno_badhandle
  | Some q ->
    if i32_arg args 2 < String.length q then errno errno_inval
    else begin
      Mem.store_string (memory env) (i32_arg args 1) q;
      ok
    end

(* Pump the normal world until a frame arrives (bounded, to fail
   rather than spin forever on a dead peer). Transport failures come
   back as errnos: a violated frame is a protocol error, a vanished
   peer a connection error, a mere stall "try again". *)
let recv_with_pump env conn =
  let rec go tries =
    if tries = 0 then Error errno_again
    else
      match Watz_tz.Optee.socket_recv env.os conn with
      | Some frame -> Ok frame
      | exception Watz_tz.Net.Bad_frame _ -> Error errno_proto
      | None ->
        if Watz_tz.Net.peer_closed conn && Watz_tz.Net.available conn = 0 then
          Error errno_conn
        else begin
          env.pump ();
          go (tries - 1)
        end
  in
  go 64

(* wasi_ra_net_handshake(port, verifier_key_ptr, ctx_out, anchor_out) *)
let net_handshake env args =
  let mem = memory env in
  let port = i32_arg args 0 in
  let key_raw = Mem.load_string mem (i32_arg args 1) 65 in
  match Watz_crypto.P256.decode key_raw with
  | None -> errno errno_inval
  | Some expected_verifier -> (
    match Watz_tz.Optee.socket_connect env.os ~port with
    | exception Watz_tz.Net.Refused _ -> errno errno_conn
    | conn -> (
      let attester =
        (* Trace the WASI-RA handshake under the board's tracer, using
           the fresh handle number as the session correlation id. *)
        Watz_attest.Protocol.Attester.create
          ~trace:(Watz_tz.Simclock.tracer env.os.Watz_tz.Optee.clock)
          ~sid:env.next_handle ~random:env.random ~expected_verifier ()
      in
      let m0 = Watz_attest.Protocol.Attester.msg0 attester in
      match Watz_tz.Optee.socket_send env.os conn m0 with
      | exception Watz_tz.Net.Peer_closed -> errno errno_conn
      | () -> (
      env.pump ();
      match recv_with_pump env conn with
      | Error e -> errno e
      | Ok m1 -> (
        match Watz_attest.Protocol.Attester.handle_msg1 attester m1 with
        | Error _ -> errno errno_proto
        | Ok anchor ->
          let h = fresh_handle env in
          Hashtbl.replace env.sessions h { attester; conn; anchor; blob = None };
          Mem.store32 mem (i32_arg args 2) (Int32.of_int h);
          Mem.store_string mem (i32_arg args 3) anchor;
          ok))))

(* wasi_ra_net_send_quote(ctx, quote_handle) *)
let net_send_quote env args =
  match
    ( Hashtbl.find_opt env.sessions (i32_arg args 0),
      Hashtbl.find_opt env.quotes (i32_arg args 1) )
  with
  | None, _ | _, None -> errno errno_badhandle
  | Some session, Some evidence -> (
    match Watz_attest.Protocol.Attester.msg2 session.attester ~evidence with
    | Error _ -> errno errno_proto
    | Ok m2 -> (
      match Watz_tz.Optee.socket_send env.os session.conn m2 with
      | exception Watz_tz.Net.Peer_closed -> errno errno_conn
      | () ->
        env.pump ();
        ok))

(* wasi_ra_net_data_len(ctx, len_out): receive msg3 if needed, report
   the decrypted blob's size. *)
let receive_blob env session =
  match session.blob with
  | Some b -> Ok b
  | None -> (
    match recv_with_pump env session.conn with
    | Error e -> Error e
    | Ok m3 -> (
      match Watz_attest.Protocol.Attester.handle_msg3 session.attester m3 with
      | Error _ -> Error errno_proto
      | Ok blob ->
        session.blob <- Some blob;
        Ok blob))

let net_data_len env args =
  match Hashtbl.find_opt env.sessions (i32_arg args 0) with
  | None -> errno errno_badhandle
  | Some session -> (
    match receive_blob env session with
    | Error e -> errno e
    | Ok blob ->
      Mem.store32 (memory env) (i32_arg args 1) (Int32.of_int (String.length blob));
      ok)

(* wasi_ra_net_receive_data(ctx, buf, buf_len, nread_out) *)
let net_receive_data env args =
  match Hashtbl.find_opt env.sessions (i32_arg args 0) with
  | None -> errno errno_badhandle
  | Some session -> (
    match receive_blob env session with
    | Error e -> errno e
    | Ok blob ->
      let mem = memory env in
      if i32_arg args 2 < String.length blob then errno errno_inval
      else begin
        Mem.store_string mem (i32_arg args 1) blob;
        Mem.store32 mem (i32_arg args 3) (Int32.of_int (String.length blob));
        ok
      end)

let net_dispose env args =
  let h = i32_arg args 0 in
  match Hashtbl.find_opt env.sessions h with
  | None -> errno errno_badhandle
  | Some session ->
    Watz_tz.Net.close session.conn;
    Hashtbl.remove env.sessions h;
    ok

let module_name = "wasi_ra"
let i = T.I32

let bindings_for env : (string * T.valtype list * T.valtype list * (A.value array -> A.value list)) list =
  [
    ("collect_quote", [ i; i; i ], [ i ], collect_quote env);
    ("dispose_quote", [ i ], [ i ], dispose_quote env);
    ("quote_len", [ i; i ], [ i ], quote_len env);
    ("quote_read", [ i; i; i ], [ i ], quote_read env);
    ("net_handshake", [ i; i; i; i ], [ i ], net_handshake env);
    ("net_send_quote", [ i; i ], [ i ], net_send_quote env);
    ("net_data_len", [ i; i ], [ i ], net_data_len env);
    ("net_receive_data", [ i; i; i; i ], [ i ], net_receive_data env);
    ("net_dispose", [ i ], [ i ], net_dispose env);
  ]

let aot_imports env : Watz_wasm.Aot.import_binding list =
  List.map
    (fun (name, params, results, impl) ->
      Watz_wasm.Aot.host ~module_:module_name ~name ~params ~results impl)
    (bindings_for env)

let interp_imports env =
  List.map
    (fun (name, params, results, impl) ->
      ( module_name,
        name,
        Watz_wasm.Instance.Extern_func
          (Watz_wasm.Instance.host_func ~name ~params ~results impl) ))
    (bindings_for env)

let fast_imports env : Watz_wasm.Fastinterp.import_binding list =
  List.map
    (fun (name, params, results, impl) ->
      Watz_wasm.Fastinterp.host ~module_:module_name ~name ~params ~results impl)
    (bindings_for env)

(** MiniC import declarations matching {!bindings_for}, for apps that
    use the attestation API. *)
let minic_imports : Watz_wasmc.Minic.import_decl list =
  let ii = Watz_wasmc.Minic.I32 in
  [
    { i_module = module_name; i_name = "collect_quote"; i_params = [ ii; ii; ii ]; i_ret = Some ii };
    { i_module = module_name; i_name = "dispose_quote"; i_params = [ ii ]; i_ret = Some ii };
    { i_module = module_name; i_name = "quote_len"; i_params = [ ii; ii ]; i_ret = Some ii };
    { i_module = module_name; i_name = "quote_read"; i_params = [ ii; ii; ii ]; i_ret = Some ii };
    { i_module = module_name; i_name = "net_handshake"; i_params = [ ii; ii; ii; ii ]; i_ret = Some ii };
    { i_module = module_name; i_name = "net_send_quote"; i_params = [ ii; ii ]; i_ret = Some ii };
    { i_module = module_name; i_name = "net_data_len"; i_params = [ ii; ii ]; i_ret = Some ii };
    { i_module = module_name; i_name = "net_receive_data"; i_params = [ ii; ii; ii; ii ]; i_ret = Some ii };
    { i_module = module_name; i_name = "net_dispose"; i_params = [ ii ]; i_ret = Some ii };
  ]

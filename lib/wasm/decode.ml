(** WebAssembly binary-format decoder (spec §5).

    This is the parsing half of the loading phase measured in Fig. 4 of
    the paper: WaTZ copies the bytecode into secure memory, hashes it,
    then decodes it here. *)

open Types
open Ast
module R = Watz_util.Bytesio.Reader

exception Malformed of string

let fail fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let valtype r =
  match R.u8 r with
  | 0x7f -> I32
  | 0x7e -> I64
  | 0x7d -> F32
  | 0x7c -> F64
  | b -> fail "invalid value type 0x%02x" b

let u32_as_int r =
  let v = R.uleb r ~max_bits:32 in
  Int64.to_int v

let vec r f =
  let n = u32_as_int r in
  if n > 1_000_000 then fail "vector too long (%d)" n;
  List.init n (fun _ -> f r)

let name r =
  let n = u32_as_int r in
  R.bytes r n

let limits r =
  match R.u8 r with
  | 0x00 -> { min = u32_as_int r; max = None }
  | 0x01 ->
    let min = u32_as_int r in
    let max = u32_as_int r in
    { min; max = Some max }
  | b -> fail "invalid limits flag 0x%02x" b

let functype r =
  match R.u8 r with
  | 0x60 ->
    let params = vec r valtype in
    let results = vec r valtype in
    { params; results }
  | b -> fail "invalid functype tag 0x%02x" b

let globaltype r =
  let content = valtype r in
  let mut =
    match R.u8 r with
    | 0x00 -> Immutable
    | 0x01 -> Mutable
    | b -> fail "invalid mutability 0x%02x" b
  in
  { content; mut }

let memarg r =
  let align = u32_as_int r in
  let offset = u32_as_int r in
  { align; offset }

let blocktype r =
  (* Peek: 0x40 is empty, a valtype byte is a single result. *)
  match R.u8 r with
  | 0x40 -> BlockEmpty
  | 0x7f -> BlockVal I32
  | 0x7e -> BlockVal I64
  | 0x7d -> BlockVal F32
  | 0x7c -> BlockVal F64
  | b -> fail "unsupported block type 0x%02x" b

(* Structured instructions nest recursively; bound the depth so a
   mutated module full of 0x02 bytes exhausts neither this decoder's
   stack nor the validator's/compilers' (they all recurse over the same
   tree). 256 is far beyond anything a real toolchain emits. *)
let max_nesting = 256

(* Decoding a structured instruction sequence. Returns the list and the
   terminator (0x0b end, or 0x05 else). *)
let rec instr_seq depth r =
  if depth > max_nesting then fail "block nesting deeper than %d" max_nesting;
  let rec go acc =
    let op = R.u8 r in
    match op with
    | 0x0b -> (List.rev acc, `End)
    | 0x05 -> (List.rev acc, `Else)
    | _ -> go (instr depth r op :: acc)
  in
  go []

and instr depth r op =
  match op with
  | 0x00 -> Unreachable
  | 0x01 -> Nop
  | 0x02 ->
    let bt = blocktype r in
    let body, term = instr_seq (depth + 1) r in
    if term <> `End then fail "block: unexpected else";
    Block (bt, body)
  | 0x03 ->
    let bt = blocktype r in
    let body, term = instr_seq (depth + 1) r in
    if term <> `End then fail "loop: unexpected else";
    Loop (bt, body)
  | 0x04 ->
    let bt = blocktype r in
    let then_, term = instr_seq (depth + 1) r in
    let else_ =
      match term with
      | `End -> []
      | `Else ->
        let e, term2 = instr_seq (depth + 1) r in
        if term2 <> `End then fail "if: nested else";
        e
    in
    If (bt, then_, else_)
  | 0x0c -> Br (u32_as_int r)
  | 0x0d -> BrIf (u32_as_int r)
  | 0x0e ->
    let targets = vec r u32_as_int in
    let default = u32_as_int r in
    BrTable (targets, default)
  | 0x0f -> Return
  | 0x10 -> Call (u32_as_int r)
  | 0x11 ->
    let ty = u32_as_int r in
    (match R.u8 r with
    | 0x00 -> CallIndirect ty
    | b -> fail "call_indirect: bad table byte 0x%02x" b)
  | 0x1a -> Drop
  | 0x1b -> Select
  | 0x20 -> LocalGet (u32_as_int r)
  | 0x21 -> LocalSet (u32_as_int r)
  | 0x22 -> LocalTee (u32_as_int r)
  | 0x23 -> GlobalGet (u32_as_int r)
  | 0x24 -> GlobalSet (u32_as_int r)
  | 0x28 -> Load (I32, None, memarg r)
  | 0x29 -> Load (I64, None, memarg r)
  | 0x2a -> Load (F32, None, memarg r)
  | 0x2b -> Load (F64, None, memarg r)
  | 0x2c -> Load (I32, Some (P8, SX), memarg r)
  | 0x2d -> Load (I32, Some (P8, ZX), memarg r)
  | 0x2e -> Load (I32, Some (P16, SX), memarg r)
  | 0x2f -> Load (I32, Some (P16, ZX), memarg r)
  | 0x30 -> Load (I64, Some (P8, SX), memarg r)
  | 0x31 -> Load (I64, Some (P8, ZX), memarg r)
  | 0x32 -> Load (I64, Some (P16, SX), memarg r)
  | 0x33 -> Load (I64, Some (P16, ZX), memarg r)
  | 0x34 -> Load (I64, Some (P32, SX), memarg r)
  | 0x35 -> Load (I64, Some (P32, ZX), memarg r)
  | 0x36 -> Store (I32, None, memarg r)
  | 0x37 -> Store (I64, None, memarg r)
  | 0x38 -> Store (F32, None, memarg r)
  | 0x39 -> Store (F64, None, memarg r)
  | 0x3a -> Store (I32, Some P8, memarg r)
  | 0x3b -> Store (I32, Some P16, memarg r)
  | 0x3c -> Store (I64, Some P8, memarg r)
  | 0x3d -> Store (I64, Some P16, memarg r)
  | 0x3e -> Store (I64, Some P32, memarg r)
  | 0x3f ->
    (match R.u8 r with 0x00 -> MemorySize | b -> fail "memory.size: bad byte 0x%02x" b)
  | 0x40 ->
    (match R.u8 r with 0x00 -> MemoryGrow | b -> fail "memory.grow: bad byte 0x%02x" b)
  | 0x41 -> Const (VI32 (Int64.to_int32 (R.sleb r ~max_bits:32)))
  | 0x42 -> Const (VI64 (R.sleb r ~max_bits:64))
  | 0x43 -> Const (VF32 (Int32.float_of_bits (R.u32 r)))
  | 0x44 -> Const (VF64 (Int64.float_of_bits (R.u64 r)))
  | 0x45 -> ITestop I32
  | 0x50 -> ITestop I64
  | op when op >= 0x46 && op <= 0x4f -> IRelop (I32, irelop (op - 0x46))
  | op when op >= 0x51 && op <= 0x5a -> IRelop (I64, irelop (op - 0x51))
  | op when op >= 0x5b && op <= 0x60 -> FRelop (F32, frelop (op - 0x5b))
  | op when op >= 0x61 && op <= 0x66 -> FRelop (F64, frelop (op - 0x61))
  | op when op >= 0x67 && op <= 0x69 -> IUnop (I32, iunop (op - 0x67))
  | op when op >= 0x6a && op <= 0x78 -> IBinop (I32, ibinop (op - 0x6a))
  | op when op >= 0x79 && op <= 0x7b -> IUnop (I64, iunop (op - 0x79))
  | op when op >= 0x7c && op <= 0x8a -> IBinop (I64, ibinop (op - 0x7c))
  | op when op >= 0x8b && op <= 0x91 -> FUnop (F32, funop (op - 0x8b))
  | op when op >= 0x92 && op <= 0x98 -> FBinop (F32, fbinop (op - 0x92))
  | op when op >= 0x99 && op <= 0x9f -> FUnop (F64, funop (op - 0x99))
  | op when op >= 0xa0 && op <= 0xa6 -> FBinop (F64, fbinop (op - 0xa0))
  | op when op >= 0xa7 && op <= 0xbf -> Cvtop (cvtop op)
  | op -> fail "unknown opcode 0x%02x" op

and irelop = function
  | 0 -> Eq | 1 -> Ne | 2 -> LtS | 3 -> LtU | 4 -> GtS
  | 5 -> GtU | 6 -> LeS | 7 -> LeU | 8 -> GeS | 9 -> GeU
  | _ -> assert false

and frelop = function
  | 0 -> Feq | 1 -> Fne | 2 -> Flt | 3 -> Fgt | 4 -> Fle | 5 -> Fge | _ -> assert false

and iunop = function 0 -> Clz | 1 -> Ctz | 2 -> Popcnt | _ -> assert false

and ibinop = function
  | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> DivS | 4 -> DivU | 5 -> RemS | 6 -> RemU
  | 7 -> And | 8 -> Or | 9 -> Xor | 10 -> Shl | 11 -> ShrS | 12 -> ShrU
  | 13 -> Rotl | 14 -> Rotr
  | _ -> assert false

and funop = function
  | 0 -> Abs | 1 -> Neg | 2 -> Ceil | 3 -> Floor | 4 -> Trunc | 5 -> Nearest | 6 -> Sqrt
  | _ -> assert false

and fbinop = function
  | 0 -> Fadd | 1 -> Fsub | 2 -> Fmul | 3 -> Fdiv | 4 -> Fmin | 5 -> Fmax | 6 -> Copysign
  | _ -> assert false

and cvtop op =
  match op with
  | 0xa7 -> I32WrapI64
  | 0xa8 -> I32TruncF32S
  | 0xa9 -> I32TruncF32U
  | 0xaa -> I32TruncF64S
  | 0xab -> I32TruncF64U
  | 0xac -> I64ExtendI32S
  | 0xad -> I64ExtendI32U
  | 0xae -> I64TruncF32S
  | 0xaf -> I64TruncF32U
  | 0xb0 -> I64TruncF64S
  | 0xb1 -> I64TruncF64U
  | 0xb2 -> F32ConvertI32S
  | 0xb3 -> F32ConvertI32U
  | 0xb4 -> F32ConvertI64S
  | 0xb5 -> F32ConvertI64U
  | 0xb6 -> F32DemoteF64
  | 0xb7 -> F64ConvertI32S
  | 0xb8 -> F64ConvertI32U
  | 0xb9 -> F64ConvertI64S
  | 0xba -> F64ConvertI64U
  | 0xbb -> F64PromoteF32
  | 0xbc -> I32ReinterpretF32
  | 0xbd -> I64ReinterpretF64
  | 0xbe -> F32ReinterpretI32
  | 0xbf -> F64ReinterpretI64
  | _ -> assert false

let expr r =
  let body, term = instr_seq 0 r in
  if term <> `End then fail "expression: unexpected else";
  body

let importdesc r =
  match R.u8 r with
  | 0x00 -> ImportFunc (u32_as_int r)
  | 0x01 ->
    (match R.u8 r with
    | 0x70 -> ImportTable (limits r)
    | b -> fail "import table: bad elemtype 0x%02x" b)
  | 0x02 -> ImportMemory (limits r)
  | 0x03 -> ImportGlobal (globaltype r)
  | b -> fail "invalid import kind 0x%02x" b

let exportdesc r =
  match R.u8 r with
  | 0x00 -> ExportFunc (u32_as_int r)
  | 0x01 -> ExportTable (u32_as_int r)
  | 0x02 -> ExportMemory (u32_as_int r)
  | 0x03 -> ExportGlobal (u32_as_int r)
  | b -> fail "invalid export kind 0x%02x" b

let code_entry r =
  let body_reader = R.sub r (u32_as_int r) in
  let groups =
    vec body_reader (fun r ->
        let count = u32_as_int r in
        let t = valtype r in
        (count, t))
  in
  let total = List.fold_left (fun acc (c, _) -> acc + c) 0 groups in
  if total > 100_000 then fail "too many locals (%d)" total;
  let locals = List.concat_map (fun (count, t) -> List.init count (fun _ -> t)) groups in
  let body = expr body_reader in
  if not (R.eof body_reader) then fail "code entry: trailing bytes";
  (locals, body)

let decode_inner bytes =
  let r = R.of_string bytes in
  let magic = try R.bytes r 4 with R.Truncated -> fail "truncated magic" in
  if not (String.equal magic "\x00asm") then fail "bad magic";
  let version = try R.u32 r with R.Truncated -> fail "truncated version" in
  if not (Int32.equal version 1l) then fail "unsupported version %ld" version;
  let m = ref empty_module in
  let func_type_indices = ref [] in
  let code_entries = ref [] in
  let last_section = ref 0 in
  (try
     while not (R.eof r) do
       let id = R.u8 r in
       let payload = R.sub r (u32_as_int r) in
       if id <> 0 then begin
         if id <= !last_section then fail "section 0x%02x out of order" id;
         last_section := id
       end;
       (match id with
       | 0 ->
         let cname = name payload in
         let rest = R.bytes payload (R.remaining payload) in
         m := { !m with customs = !m.customs @ [ (cname, rest) ] }
       | 1 -> m := { !m with types = vec payload functype }
       | 2 ->
         m :=
           { !m with
             imports =
               vec payload (fun r ->
                   let imp_module = name r in
                   let imp_name = name r in
                   let idesc = importdesc r in
                   { imp_module; imp_name; idesc })
           }
       | 3 -> func_type_indices := vec payload u32_as_int
       | 4 ->
         m :=
           { !m with
             tables =
               vec payload (fun r ->
                   match R.u8 r with
                   | 0x70 -> limits r
                   | b -> fail "table: bad elemtype 0x%02x" b)
           }
       | 5 -> m := { !m with memories = vec payload limits }
       | 6 ->
         m :=
           { !m with
             globals =
               vec payload (fun r ->
                   let gtype = globaltype r in
                   let ginit = expr r in
                   { gtype; ginit })
           }
       | 7 ->
         m :=
           { !m with
             exports =
               vec payload (fun r ->
                   let exp_name = name r in
                   let edesc = exportdesc r in
                   { exp_name; edesc })
           }
       | 8 -> m := { !m with start = Some (u32_as_int payload) }
       | 9 ->
         m :=
           { !m with
             elems =
               vec payload (fun r ->
                   let etable = u32_as_int r in
                   let eoffset = expr r in
                   let einit = vec r u32_as_int in
                   { etable; eoffset; einit })
           }
       | 10 -> code_entries := vec payload code_entry
       | 11 ->
         m :=
           { !m with
             datas =
               vec payload (fun r ->
                   let dmem = u32_as_int r in
                   let doffset = expr r in
                   let n = u32_as_int r in
                   let dinit = R.bytes r n in
                   { dmem; doffset; dinit })
           }
       | id -> fail "unknown section id 0x%02x" id);
       if id <> 0 && not (R.eof payload) then fail "section 0x%02x: trailing bytes" id
     done
   with R.Truncated -> fail "unexpected end of input");
  if List.length !func_type_indices <> List.length !code_entries then
    fail "function and code section lengths disagree (%d vs %d)"
      (List.length !func_type_indices)
      (List.length !code_entries);
  let funcs =
    List.map2 (fun ftype (locals, body) -> { ftype; locals; body }) !func_type_indices
      !code_entries
  in
  { !m with funcs }

(* The decoder's error contract: any byte string maps to a module or a
   [Malformed] — never [Invalid_argument], [Truncated] or a stack
   overflow. The fuzz harness's byte mutator asserts exactly this. *)
let decode bytes =
  try decode_inner bytes with
  | R.Truncated -> fail "unexpected end of input"
  | R.Overflow -> fail "malformed LEB128 integer"

(** Fast interpreter: pre-decoded linear bytecode with direct branch
    targets.

    This is the middle execution tier between the tree-walking
    {!Interp} and the closure-compiling {!Aot} — the role WAMR's "fast
    interpreter" plays on real hardware. A validated module is
    flattened {e once} into a flat [op array] per function: structured
    control (block/loop/if) disappears into jumps whose absolute
    program-counter targets are precomputed at flattening time, so
    execution needs no [Branch] exception unwinding and no label-stack
    traversal. Operands live in typed register files indexed by the
    static stack height (known from validation), exactly as in the AOT
    tier, so the hot loop is: fetch [code.(pc)], match, mutate arrays,
    bump an integer [pc].

    Unlike the AOT tier, the compiled form ({!cmodule}) references
    functions by {e index} and contains no per-instance state, so it
    can be cached across instantiations — {!Runtime.load} keys such a
    cache by the module's SHA-256 measurement.

    Modules must be validated ({!Validate.validate}) before
    {!compile}: the flattener trusts the types. *)

open Types
open Ast
open Instance

(* Native-int arithmetic on 32-bit values stored sign-extended. *)
let wrap32 x = (x lsl 31) asr 31
let u32 x = x land 0xffffffff

(* ------------------------------------------------------------------ *)
(* Pre-decoded instruction form *)

(* A register move performed when a branch carries values across block
   boundaries: copy slot [msrc] down to [mdst] in the register file
   selected by [mk] (0 = i32, 1 = i64, 2 = float). *)
type mv = { mk : int; msrc : int; mdst : int }

(* A branch edge. [target] is an absolute index into the function's op
   array; forward edges are emitted with [-1] and patched when the
   destination label's end is reached. *)
type edge = { mutable target : int; moves : mv array }

(* Pre-resolved load/store flavours (type x pack x extension). *)
type lkind =
  | LI32 | LI64 | LF32 | LF64
  | LI32_8S | LI32_8U | LI32_16S | LI32_16U
  | LI64_8S | LI64_8U | LI64_16S | LI64_16U | LI64_32S | LI64_32U

type skind = SI32 | SI64 | SF32 | SF64 | SI32_8 | SI32_16 | SI64_8 | SI64_16 | SI64_32

(* Slot indices below address a unified register file: locals occupy
   [0, nloc) and stack slots [nloc, nloc + max_height); the offset is
   baked in at flattening time, which turns local.get/set/tee into
   plain register moves. The hottest operation families (i32 index
   arithmetic, f64 arithmetic, 32/64-bit loads and stores) get
   dedicated constructors so the dispatch loop resolves them with a
   single match. *)
type op =
  | OHalt
  | OUnreachable
  | OFuel (* charge one fuel unit; emitted only when compiling with ~fuel *)
  | OJmp of edge
  | OBrIf of int * edge (* jump when slot <> 0 *)
  | OBrIfNot of int * edge (* jump when slot = 0 (if's else edge) *)
  | OBrTable of int * edge array * edge
  | OCall of int * int (* function index, args base slot *)
  | OCallIndirect of int * int * int (* type index, index slot, args base *)
  | OConstI of int * int (* dst, value (sign-extended) *)
  | OConstL of int * int64
  | OConstF of int * float
  | OMovI of int * int (* dst, src: local<->stack traffic *)
  | OMovL of int * int
  | OMovF of int * int
  | OGlobalGetI of int * int (* dst, global *)
  | OGlobalGetL of int * int
  | OGlobalGetF of int * int
  | OGlobalSetI of int * int (* global, src *)
  | OGlobalSetL of int * int
  | OGlobalSetF of int * int
  | OSelectI of int (* result slot d; v2 at d+1, cond at d+2 *)
  | OSelectL of int
  | OSelectF of int
  | OTestI of int (* i32.eqz at slot *)
  | OTestL of int (* i64.eqz: reads xl, writes xi *)
  | OIUn32 of iunop * int
  | OIUn64 of iunop * int
  (* The hot families are three-address: the emit-time peephole folds
     adjacent local.get/const pushes into the consumer's operand slots
     and local.set/br_if consumers into its destination, so [a]/[b] may
     name locals directly and [d] may be a local. Emitted naturally as
     (d, d, d+1) when nothing fuses. *)
  | OAdd32 of int * int * int (* d, a, b: xi.d <- xi.a op xi.b *)
  | OSub32 of int * int * int
  | OMul32 of int * int * int
  | OAnd32 of int * int * int
  | OOr32 of int * int * int
  | OXor32 of int * int * int
  | OShl32 of int * int * int
  | OShrS32 of int * int * int
  | OShrU32 of int * int * int
  | OBin3I32 of ibinop * int * int * int (* d, a, imm (folded i32.const) *)
  | OIBin32 of ibinop * int (* div/rem/rot: in-place at d, d+1 *)
  | OIBin64 of ibinop * int
  | OIRel32 of irelop * int * int * int (* d, a, b *)
  | OIRelI32 of irelop * int * int * int (* d, a, imm *)
  | OIRel64 of irelop * int
  | OFUn of funop * int * bool (* op, slot, result is f32 *)
  | OFAdd64 of int * int * int (* d, a, b in the float file *)
  | OFSub64 of int * int * int
  | OFMul64 of int * int * int
  | OFDiv64 of int * int * int
  | OFBin32 of fbinop * int
  | OFBin64 of fbinop * int (* min/max/copysign *)
  | OFRel of frelop * int
  | OCvt of cvtop * int * int (* dst slot, src slot *)
  | OCvtIF of int * int (* f64.convert_i32_s: xf.d <- float xi.s *)
  | OFImm of fbinop * int * int * float (* d, a, imm (folded f64.const) *)
  | OBrCmpR32 of irelop * int * int * edge (* jump when xi.a op xi.b *)
  | OBrCmpI32 of irelop * int * int * edge (* jump when xi.a op imm *)
  | OLoadI32 of int * int * int (* static offset, result slot, addr slot *)
  | OLoadI64 of int * int * int
  | OLoadF64 of int * int * int
  | OStoreI32 of int * int * int (* static offset, addr slot, value slot *)
  | OStoreI64 of int * int * int
  | OStoreF64 of int * int * int
  | OScaled of int * int * int * int (* d, x, k, b: xi.d <- wrap32 ((xi.x lsl k) + b) *)
  | OScaledR of int * int * int * int (* d, x, k, r: xi.d <- wrap32 ((xi.x lsl k) + xi.r) *)
  | OLoadI32X of int * int * int * int * int (* off, const base, dst, index slot, shift *)
  | OLoadI64X of int * int * int * int * int
  | OLoadF64X of int * int * int * int * int
  | OLoadI32RX of int * int * int * int * int (* off, dst, index slot, shift, base slot *)
  | OLoadF64RX of int * int * int * int * int
  | OStoreI32X of int * int * int * int * int (* off, const base, index slot, shift, value *)
  | OStoreI64X of int * int * int * int * int
  | OStoreF64X of int * int * int * int * int
  | OStoreI32RX of int * int * int * int * int (* off, index slot, shift, base slot, value *)
  | OStoreF64RX of int * int * int * int * int
  | OLoad of lkind * int * int (* kind, static offset, addr/result slot *)
  | OStore of skind * int * int (* kind, static offset, addr slot (value at +1) *)
  | OMemSize of int
  | OMemGrow of int

(* A flattened function body. Instance-independent: calls reference
   function indices, globals reference global indices. *)
type cbody = {
  cb_code : op array;
  cb_nslots : int; (* unified register file: locals + max stack height *)
  cb_nloc : int; (* params + locals *)
  cb_param_types : valtype array;
  cb_result_types : valtype array;
}

(* A compiled module: the source AST (for link-time data: imports,
   exports, segments, start) plus the flattened bodies. Contains no
   instance state, so it is safe to share across instantiations and to
   cache by code measurement. *)
type cmodule = {
  cm_module : module_;
  cm_types : functype array;
  cm_func_types : functype array; (* full function index space *)
  cm_bodies : cbody array; (* own (non-imported) functions *)
  cm_n_imported : int;
}

(* ------------------------------------------------------------------ *)
(* Runtime representation *)

type fglobal = { fgty : globaltype; mutable fgvalue : value }

(* [fframe0]/[fbusy]: each function keeps one preallocated frame that
   non-recursive calls reuse (locals re-zeroed on reuse; stack slots
   need no clearing, validation guarantees they are written before
   read). Recursive or reentrant calls fall back to a fresh frame. *)
type ffuncinst =
  | FWasm of {
      fftype : functype;
      fbody : cbody;
      finst : finstance;
      fframe0 : frame;
      mutable fbusy : bool;
    }
  | FHost of {
      fhtype : functype;
      fhname : string;
      fh_params : valtype array;
      fh_results : valtype array;
      fimpl : value array -> value list;
    }

(* A call frame: one register file per value class, locals first. *)
and frame = {
  xi : int array; (* i32 slots, sign-extended native ints *)
  xl : int64 array;
  xf : float array; (* f32/f64 slots *)
  inst : finstance;
}

and finstance = {
  fmod : cmodule;
  ffuncs : ffuncinst array;
  fmemories : Memory.t array;
  ftables : ffuncinst option array array;
  fglobals : fglobal array;
  mutable fexports : (string * fextern) list;
}

and fextern =
  | FFunc of ffuncinst
  | FMemory of Memory.t
  | FGlobal of fglobal
  | FTable of ffuncinst option array

let type_of_ffuncinst = function FWasm f -> f.fftype | FHost h -> h.fhtype

let empty_int : int array = [||]
let empty_i64 : int64 array = [||]
let empty_float : float array = [||]

let make_frame inst (b : cbody) =
  let n = b.cb_nslots in
  {
    xi = (if n = 0 then empty_int else Array.make n 0);
    xl = (if n = 0 then empty_i64 else Array.make n 0L);
    xf = (if n = 0 then empty_float else Array.make n 0.0);
    inst;
  }

(* Boxing boundaries (host calls, invoke API). *)
let read_slot fr t h =
  match t with
  | I32 -> VI32 (Int32.of_int fr.xi.(h))
  | I64 -> VI64 fr.xl.(h)
  | F32 -> VF32 fr.xf.(h)
  | F64 -> VF64 fr.xf.(h)

let write_slot fr t h v =
  match (t, v) with
  | I32, VI32 x -> fr.xi.(h) <- Int32.to_int x
  | I64, VI64 x -> fr.xl.(h) <- x
  | F32, VF32 x -> fr.xf.(h) <- x
  | F64, VF64 x -> fr.xf.(h) <- x
  | (I32 | I64 | F32 | F64), _ -> raise (Trap "host function returned wrong type")

let check_addr data addr width =
  if addr < 0 || addr + width > Bytes.length data then raise (Trap "out of bounds memory access")

(* Unaligned native-endian word access without the stdlib's redundant
   bounds check ([check_addr] already ran); converted to Wasm's
   little-endian layout. *)
external get32u : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external get64u : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external set32u : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"
external set64u : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external swap32 : int32 -> int32 = "%bswap_int32"
external swap64 : int64 -> int64 = "%bswap_int64"

(* ------------------------------------------------------------------ *)
(* Flattening (compilation) *)

(* Growable op buffer. *)
type buf = { mutable arr : op array; mutable len : int }

type cframe = {
  fr_entry : int; (* stack height at label entry *)
  fr_label_types : valtype list; (* what a branch to this label carries *)
  fr_is_loop : bool;
  fr_start : int; (* loop header pc; meaningful when fr_is_loop *)
  mutable fr_pending : edge list; (* forward edges to patch at label end *)
}

type cctx = {
  ctypes : functype array;
  cfunc_types : functype array;
  cglobals_t : globaltype array;
  clocals : valtype array;
  cnloc : int; (* locals count = offset of stack slot 0 in the register file *)
  mutable cstack : valtype list; (* compile-time type stack, top first *)
  mutable cheight : int;
  mutable cmax : int;
  mutable cframes : cframe list; (* innermost first *)
  cbuf : buf;
  cmarks : (int, unit) Hashtbl.t; (* branch-target positions: fusion barriers *)
  cfuel : bool; (* emit OFuel at function entry and loop headers *)
}

let emit ctx o =
  let b = ctx.cbuf in
  if b.len = Array.length b.arr then begin
    let bigger = Array.make (2 * Array.length b.arr) OHalt in
    Array.blit b.arr 0 bigger 0 b.len;
    b.arr <- bigger
  end;
  b.arr.(b.len) <- o;
  b.len <- b.len + 1

let here ctx = ctx.cbuf.len

(* Record that the current position is (or will become) a branch
   target, so the peephole below never folds an op across it. *)
let mark_here ctx = Hashtbl.replace ctx.cmarks (here ctx) ()

let negate_irelop = function
  | Eq -> Ne
  | Ne -> Eq
  | LtS -> GeS
  | LtU -> GeU
  | GtS -> LeS
  | GtU -> LeU
  | LeS -> GtS
  | LeU -> GtU
  | GeS -> LtS
  | GeU -> LtU

let ibinop_of_spec = function
  | OAdd32 _ -> Add
  | OSub32 _ -> Sub
  | OMul32 _ -> Mul
  | OAnd32 _ -> And
  | OOr32 _ -> Or
  | OXor32 _ -> Xor
  | OShl32 _ -> Shl
  | OShrS32 _ -> ShrS
  | OShrU32 _ -> ShrU
  | _ -> assert false

let commutes = function Add | Mul | And | Or | Xor -> true | _ -> false

(* Try to fold the trailing op [tail] into the op about to be emitted.
   Sound because of stack discipline: when [pending] consumes the slot
   [tail] just produced, that slot is dead afterwards, and folds only
   fire when [tail]'s destination is exactly the natural operand slot
   (a stack position >= cnloc), never a local carrying a live value.
   Returns the combined op, or None to emit [pending] as-is. *)
(* Shift count when [op]/[c] is a scaled-address producer: the shift
   amount for [Shl], log2 for a power-of-two [Mul], -1 otherwise. *)
let shift_amount op c =
  match op with
  | Shl -> c land 31
  | Mul when c > 0 && c land (c - 1) = 0 ->
    let rec log2 k v = if v <= 1 then k else log2 (k + 1) (v asr 1) in
    log2 0 c
  | _ -> -1

let absorb ~nloc (pending : op) (tail : op) : op option =
  let stack_slot s = s >= nloc in
  match (pending, tail) with
  (* -- operand folding into 3-address i32 arithmetic ---------------- *)
  | (OAdd32 (d, a, b) | OSub32 (d, a, b) | OMul32 (d, a, b) | OAnd32 (d, a, b)
    | OOr32 (d, a, b) | OXor32 (d, a, b) | OShl32 (d, a, b) | OShrS32 (d, a, b)
    | OShrU32 (d, a, b)), OMovI (t, s)
    when t = b && b = a + 1 -> (
    (* right operand still at its natural push slot: read the move's
       source directly *)
    Some
      (match pending with
      | OAdd32 _ -> OAdd32 (d, a, s)
      | OSub32 _ -> OSub32 (d, a, s)
      | OMul32 _ -> OMul32 (d, a, s)
      | OAnd32 _ -> OAnd32 (d, a, s)
      | OOr32 _ -> OOr32 (d, a, s)
      | OXor32 _ -> OXor32 (d, a, s)
      | OShl32 _ -> OShl32 (d, a, s)
      | OShrS32 _ -> OShrS32 (d, a, s)
      | OShrU32 _ -> OShrU32 (d, a, s)
      | _ -> assert false))
  | (OAdd32 (d, a, b) | OSub32 (d, a, b) | OMul32 (d, a, b) | OAnd32 (d, a, b)
    | OOr32 (d, a, b) | OXor32 (d, a, b) | OShl32 (d, a, b) | OShrS32 (d, a, b)
    | OShrU32 (d, a, b)), OConstI (t, v)
    when t = b && b = a + 1 ->
    Some (OBin3I32 (ibinop_of_spec pending, d, a, v))
  | (OAdd32 (d, a, b) | OSub32 (d, a, b) | OMul32 (d, a, b) | OAnd32 (d, a, b)
    | OOr32 (d, a, b) | OXor32 (d, a, b) | OShl32 (d, a, b) | OShrS32 (d, a, b)
    | OShrU32 (d, a, b)), OMovI (t, s)
    when t = a && a = d && b <> a + 1 -> (
    (* right operand already folded; now fold the left push *)
    Some
      (match pending with
      | OAdd32 _ -> OAdd32 (d, s, b)
      | OSub32 _ -> OSub32 (d, s, b)
      | OMul32 _ -> OMul32 (d, s, b)
      | OAnd32 _ -> OAnd32 (d, s, b)
      | OOr32 _ -> OOr32 (d, s, b)
      | OXor32 _ -> OXor32 (d, s, b)
      | OShl32 _ -> OShl32 (d, s, b)
      | OShrS32 _ -> OShrS32 (d, s, b)
      | OShrU32 _ -> OShrU32 (d, s, b)
      | _ -> assert false))
  | OBin3I32 (op, d, a, imm), OMovI (t, s) when t = a && a = d -> Some (OBin3I32 (op, d, s, imm))
  | (OAdd32 (d, a, b) | OMul32 (d, a, b) | OAnd32 (d, a, b) | OOr32 (d, a, b)
    | OXor32 (d, a, b)), OConstI (t, v)
    when t = a && a = d && b <> a + 1 && commutes (ibinop_of_spec pending) ->
    (* constant pushed first on a commutative op: swap operands *)
    Some (OBin3I32 (ibinop_of_spec pending, d, b, v))
  (* -- operand folding into i32 comparisons ------------------------- *)
  | OIRel32 (op, d, a, b), OMovI (t, s) when t = b && b = a + 1 -> Some (OIRel32 (op, d, a, s))
  | OIRel32 (op, d, a, b), OConstI (t, v) when t = b && b = a + 1 ->
    Some (OIRelI32 (op, d, a, v))
  | OIRel32 (op, d, a, b), OMovI (t, s) when t = a && a = d && b <> a + 1 ->
    Some (OIRel32 (op, d, s, b))
  | OIRelI32 (op, d, a, imm), OMovI (t, s) when t = a && a = d -> Some (OIRelI32 (op, d, s, imm))
  (* -- operand folding into f64 arithmetic -------------------------- *)
  | (OFAdd64 (d, a, b) | OFSub64 (d, a, b) | OFMul64 (d, a, b) | OFDiv64 (d, a, b)),
    OMovF (t, s)
    when t = b && b = a + 1 -> (
    Some
      (match pending with
      | OFAdd64 _ -> OFAdd64 (d, a, s)
      | OFSub64 _ -> OFSub64 (d, a, s)
      | OFMul64 _ -> OFMul64 (d, a, s)
      | OFDiv64 _ -> OFDiv64 (d, a, s)
      | _ -> assert false))
  | (OFAdd64 (d, a, b) | OFSub64 (d, a, b) | OFMul64 (d, a, b) | OFDiv64 (d, a, b)),
    OMovF (t, s)
    when t = a && a = d && b <> a + 1 -> (
    Some
      (match pending with
      | OFAdd64 _ -> OFAdd64 (d, s, b)
      | OFSub64 _ -> OFSub64 (d, s, b)
      | OFMul64 _ -> OFMul64 (d, s, b)
      | OFDiv64 _ -> OFDiv64 (d, s, b)
      | _ -> assert false))
  | (OFAdd64 (d, a, b) | OFSub64 (d, a, b) | OFMul64 (d, a, b) | OFDiv64 (d, a, b)),
    OConstF (t, v)
    when t = b && b = a + 1 -> (
    Some
      (match pending with
      | OFAdd64 _ -> OFImm (Fadd, d, a, v)
      | OFSub64 _ -> OFImm (Fsub, d, a, v)
      | OFMul64 _ -> OFImm (Fmul, d, a, v)
      | OFDiv64 _ -> OFImm (Fdiv, d, a, v)
      | _ -> assert false))
  | (OFAdd64 (d, a, b) | OFMul64 (d, a, b)), OConstF (t, v) when t = a && a = d && b <> a + 1 ->
    (* constant pushed first on a commutative f64 op *)
    Some (OFImm ((match pending with OFAdd64 _ -> Fadd | _ -> Fmul), d, b, v))
  | OFImm (op, d, a, c), OMovF (t, s) when t = a && a = d -> Some (OFImm (op, d, s, c))
  (* -- conversions --------------------------------------------------- *)
  | OCvtIF (d, a), OMovI (t, s) when t = a && a = d -> Some (OCvtIF (d, s))
  | OCvt (op, d, a), OMovI (t, s) when t = a && a = d -> Some (OCvt (op, d, s))
  | OCvt (op, d, a), OMovL (t, s) when t = a && a = d -> Some (OCvt (op, d, s))
  | OCvt (op, d, a), OMovF (t, s) when t = a && a = d -> Some (OCvt (op, d, s))
  (* -- address/value folding into loads and stores ------------------ *)
  | OLoadI32 (off, d, a), OMovI (t, s) when t = a && a = d -> Some (OLoadI32 (off, d, s))
  | OLoadI64 (off, d, a), OMovI (t, s) when t = a && a = d -> Some (OLoadI64 (off, d, s))
  | OLoadF64 (off, d, a), OMovI (t, s) when t = a && a = d -> Some (OLoadF64 (off, d, s))
  | OStoreI32 (off, a, v), OMovI (t, s) when t = v && v = a + 1 -> Some (OStoreI32 (off, a, s))
  | OStoreI64 (off, a, v), OMovL (t, s) when t = v && v = a + 1 -> Some (OStoreI64 (off, a, s))
  | OStoreF64 (off, a, v), OMovF (t, s) when t = v && v = a + 1 -> Some (OStoreF64 (off, a, s))
  | (OStoreI32 (off, a, v) | OStoreI64 (off, a, v) | OStoreF64 (off, a, v)), OMovI (t, s)
    when t = a && v <> a + 1 -> (
    (* value already folded; the trailing op is now the address push *)
    Some
      (match pending with
      | OStoreI32 _ -> OStoreI32 (off, s, v)
      | OStoreI64 _ -> OStoreI64 (off, s, v)
      | OStoreF64 _ -> OStoreF64 (off, s, v)
      | _ -> assert false))
  (* -- scaled-address folding -----------------------------------------
        (x << k) + b  /  (x * 2^k) + b  address chains collapse into a
        single [OScaled]/[OScaledR], which then fuses into the memory op
        itself.  Every rewrite preserves the exact wrap32 arithmetic of
        the unfused chain, so addresses (and traps) are bit-identical:
        wrap32 only depends on the low 32 bits, hence
        wrap32 (wrap32 (x lsl k) + b) = wrap32 ((x lsl k) + b) and
        (x +- c) lsl k has the same low bits as (x lsl k) +- (c lsl k). *)
  | OBin3I32 (Add, d, a, c2), OBin3I32 (((Shl | Mul) as bop), t, x, c)
    when t = a && a = d && stack_slot a && shift_amount bop c >= 0 ->
    Some (OScaled (d, x, shift_amount bop c, wrap32 c2))
  | OBin3I32 (((Shl | Mul) as bop), d, a, c), OBin3I32 (((Add | Sub) as op2), t, x, c2)
    when t = a && a = d && stack_slot a && shift_amount bop c >= 0 ->
    let k = shift_amount bop c in
    Some (OScaled (d, x, k, wrap32 ((match op2 with Sub -> -c2 | _ -> c2) lsl k)))
  | OBin3I32 (Add, d, a, c2), OScaled (t, x, k, b0) when t = a && a = d && stack_slot a ->
    Some (OScaled (d, x, k, wrap32 (b0 + c2)))
  | OAdd32 (d, a, b), OBin3I32 (((Shl | Mul) as bop), t, x, c)
    when t = a && a = d && b <> a && stack_slot a && shift_amount bop c >= 0 ->
    Some (OScaledR (d, x, shift_amount bop c, b))
  | OAdd32 (d, a, b), OBin3I32 (((Shl | Mul) as bop), t, x, c)
    when t = b && b = a + 1 && a <> b && stack_slot b && shift_amount bop c >= 0 ->
    Some (OScaledR (d, x, shift_amount bop c, a))
  | (OLoadI32 (off, d, a) | OLoadI64 (off, d, a) | OLoadF64 (off, d, a)),
    OBin3I32 (((Shl | Mul) as bop), t, x, c)
    when t = a && a = d && stack_slot a && shift_amount bop c >= 0 ->
    let k = shift_amount bop c in
    Some
      (match pending with
      | OLoadI32 _ -> OLoadI32X (off, 0, d, x, k)
      | OLoadI64 _ -> OLoadI64X (off, 0, d, x, k)
      | OLoadF64 _ -> OLoadF64X (off, 0, d, x, k)
      | _ -> assert false)
  | (OLoadI32 (off, d, a) | OLoadI64 (off, d, a) | OLoadF64 (off, d, a)), OScaled (t, x, k, b0)
    when t = a && a = d && stack_slot a ->
    Some
      (match pending with
      | OLoadI32 _ -> OLoadI32X (off, b0, d, x, k)
      | OLoadI64 _ -> OLoadI64X (off, b0, d, x, k)
      | OLoadF64 _ -> OLoadF64X (off, b0, d, x, k)
      | _ -> assert false)
  | (OLoadI32 (off, d, a) | OLoadF64 (off, d, a)), OScaledR (t, x, k, r)
    when t = a && a = d && stack_slot a ->
    Some
      (match pending with
      | OLoadI32 _ -> OLoadI32RX (off, d, x, k, r)
      | OLoadF64 _ -> OLoadF64RX (off, d, x, k, r)
      | _ -> assert false)
  | (OStoreI32 (off, a, v) | OStoreI64 (off, a, v) | OStoreF64 (off, a, v)),
    OBin3I32 (((Shl | Mul) as bop), t, x, c)
    when t = a && v <> a + 1 && stack_slot a && shift_amount bop c >= 0 ->
    let k = shift_amount bop c in
    Some
      (match pending with
      | OStoreI32 _ -> OStoreI32X (off, 0, x, k, v)
      | OStoreI64 _ -> OStoreI64X (off, 0, x, k, v)
      | OStoreF64 _ -> OStoreF64X (off, 0, x, k, v)
      | _ -> assert false)
  | (OStoreI32 (off, a, v) | OStoreI64 (off, a, v) | OStoreF64 (off, a, v)), OScaled (t, x, k, b0)
    when t = a && v <> a + 1 && stack_slot a ->
    Some
      (match pending with
      | OStoreI32 _ -> OStoreI32X (off, b0, x, k, v)
      | OStoreI64 _ -> OStoreI64X (off, b0, x, k, v)
      | OStoreF64 _ -> OStoreF64X (off, b0, x, k, v)
      | _ -> assert false)
  | (OStoreI32 (off, a, v) | OStoreF64 (off, a, v)), OScaledR (t, x, k, r)
    when t = a && v <> a + 1 && stack_slot a ->
    Some
      (match pending with
      | OStoreI32 _ -> OStoreI32RX (off, x, k, r, v)
      | OStoreF64 _ -> OStoreF64RX (off, x, k, r, v)
      | _ -> assert false)
  (* -- compare-and-branch fusion ------------------------------------
        Guard: only fold a producer away when its destination [c] is a
        dead stack slot. After local.set retargeting the producer's
        destination can be a *local* (e.g. relop; local.set z;
        local.get z; br_if folds down to OBrIf(z) with the retargeted
        OIRel32 writing z as the trailing op) — folding that producer
        into the branch would delete a live local store. *)
  | OBrIf (c, e), OIRel32 (op, t, a, b) when t = c && stack_slot c ->
    Some (OBrCmpR32 (op, a, b, e))
  | OBrIf (c, e), OIRelI32 (op, t, a, imm) when t = c && stack_slot c ->
    Some (OBrCmpI32 (op, a, imm, e))
  | OBrIfNot (c, e), OIRel32 (op, t, a, b) when t = c && stack_slot c ->
    Some (OBrCmpR32 (negate_irelop op, a, b, e))
  | OBrIfNot (c, e), OIRelI32 (op, t, a, imm) when t = c && stack_slot c ->
    Some (OBrCmpI32 (negate_irelop op, a, imm, e))
  | OBrIf (c, e), OTestI t when t = c && stack_slot c -> Some (OBrIfNot (c, e))
  | OBrIfNot (c, e), OTestI t when t = c && stack_slot c -> Some (OBrIf (c, e))
  | OBrIf (c, e), OMovI (t, s) when t = c && stack_slot c -> Some (OBrIf (s, e))
  | OBrIfNot (c, e), OMovI (t, s) when t = c && stack_slot c -> Some (OBrIfNot (s, e))
  (* -- local.set retargeting: rewrite the producer's destination ----- *)
  | OMovI (z, s), OConstI (t, v) when t = s && stack_slot s -> Some (OConstI (z, v))
  | OMovI (z, s), OMovI (t, x) when t = s && stack_slot s -> Some (OMovI (z, x))
  | OMovI (z, s), OAdd32 (t, a, b) when t = s && stack_slot s -> Some (OAdd32 (z, a, b))
  | OMovI (z, s), OSub32 (t, a, b) when t = s && stack_slot s -> Some (OSub32 (z, a, b))
  | OMovI (z, s), OMul32 (t, a, b) when t = s && stack_slot s -> Some (OMul32 (z, a, b))
  | OMovI (z, s), OAnd32 (t, a, b) when t = s && stack_slot s -> Some (OAnd32 (z, a, b))
  | OMovI (z, s), OOr32 (t, a, b) when t = s && stack_slot s -> Some (OOr32 (z, a, b))
  | OMovI (z, s), OXor32 (t, a, b) when t = s && stack_slot s -> Some (OXor32 (z, a, b))
  | OMovI (z, s), OShl32 (t, a, b) when t = s && stack_slot s -> Some (OShl32 (z, a, b))
  | OMovI (z, s), OShrS32 (t, a, b) when t = s && stack_slot s -> Some (OShrS32 (z, a, b))
  | OMovI (z, s), OShrU32 (t, a, b) when t = s && stack_slot s -> Some (OShrU32 (z, a, b))
  | OMovI (z, s), OBin3I32 (op, t, a, imm) when t = s && stack_slot s -> Some (OBin3I32 (op, z, a, imm))
  | OMovI (z, s), OIRel32 (op, t, a, b) when t = s && stack_slot s -> Some (OIRel32 (op, z, a, b))
  | OMovI (z, s), OIRelI32 (op, t, a, imm) when t = s && stack_slot s -> Some (OIRelI32 (op, z, a, imm))
  | OMovI (z, s), OLoadI32 (off, t, a) when t = s && stack_slot s -> Some (OLoadI32 (off, z, a))
  | OMovF (z, s), OConstF (t, v) when t = s && stack_slot s -> Some (OConstF (z, v))
  | OMovF (z, s), OMovF (t, x) when t = s && stack_slot s -> Some (OMovF (z, x))
  | OMovF (z, s), OFAdd64 (t, a, b) when t = s && stack_slot s -> Some (OFAdd64 (z, a, b))
  | OMovF (z, s), OFSub64 (t, a, b) when t = s && stack_slot s -> Some (OFSub64 (z, a, b))
  | OMovF (z, s), OFMul64 (t, a, b) when t = s && stack_slot s -> Some (OFMul64 (z, a, b))
  | OMovF (z, s), OFDiv64 (t, a, b) when t = s && stack_slot s -> Some (OFDiv64 (z, a, b))
  | OMovF (z, s), OLoadF64 (off, t, a) when t = s && stack_slot s -> Some (OLoadF64 (off, z, a))
  | OMovF (z, s), OFImm (op, t, a, c) when t = s && stack_slot s -> Some (OFImm (op, z, a, c))
  | OMovI (z, s), OScaled (t, x, k, b0) when t = s && stack_slot s -> Some (OScaled (z, x, k, b0))
  | OMovI (z, s), OScaledR (t, x, k, r) when t = s && stack_slot s -> Some (OScaledR (z, x, k, r))
  | OMovI (z, s), OLoadI32X (off, b0, t, x, k) when t = s && stack_slot s ->
    Some (OLoadI32X (off, b0, z, x, k))
  | OMovL (z, s), OLoadI64X (off, b0, t, x, k) when t = s && stack_slot s ->
    Some (OLoadI64X (off, b0, z, x, k))
  | OMovF (z, s), OLoadF64X (off, b0, t, x, k) when t = s && stack_slot s ->
    Some (OLoadF64X (off, b0, z, x, k))
  | OMovI (z, s), OLoadI32RX (off, t, x, k, r) when t = s && stack_slot s ->
    Some (OLoadI32RX (off, z, x, k, r))
  | OMovF (z, s), OLoadF64RX (off, t, x, k, r) when t = s && stack_slot s ->
    Some (OLoadF64RX (off, z, x, k, r))
  | OMovF (z, s), OCvtIF (t, a) when t = s && stack_slot s -> Some (OCvtIF (z, a))
  | OMovI (z, s), OCvt (op, t, a) when t = s && stack_slot s -> Some (OCvt (op, z, a))
  | OMovL (z, s), OCvt (op, t, a) when t = s && stack_slot s -> Some (OCvt (op, z, a))
  | OMovF (z, s), OCvt (op, t, a) when t = s && stack_slot s -> Some (OCvt (op, z, a))
  | OMovL (z, s), OConstL (t, v) when t = s && stack_slot s -> Some (OConstL (z, v))
  | OMovL (z, s), OMovL (t, x) when t = s && stack_slot s -> Some (OMovL (z, x))
  | OMovL (z, s), OLoadI64 (off, t, a) when t = s && stack_slot s -> Some (OLoadI64 (off, z, a))
  | _ -> None

(* Emit with fusion: keep absorbing the trailing op while legal. The
   mark check guards relocation — combining into position [len - 1]
   is only sound when no branch lands at [len] (where the new op would
   otherwise have been). *)
let emit_peep ctx o =
  let b = ctx.cbuf in
  let rec go o =
    if b.len > 0 && not (Hashtbl.mem ctx.cmarks b.len) then
      match absorb ~nloc:ctx.cnloc o b.arr.(b.len - 1) with
      | Some o' ->
        b.len <- b.len - 1;
        go o'
      | None -> emit ctx o
    else emit ctx o
  in
  go o

let push_t ctx t =
  ctx.cstack <- t :: ctx.cstack;
  ctx.cheight <- ctx.cheight + 1;
  if ctx.cheight > ctx.cmax then ctx.cmax <- ctx.cheight

let pop_t ctx =
  match ctx.cstack with
  | [] -> invalid_arg "Fastinterp: compile-time stack underflow (module not validated?)"
  | t :: rest ->
    ctx.cstack <- rest;
    ctx.cheight <- ctx.cheight - 1;
    t

let pop_n ctx n = List.init n (fun _ -> pop_t ctx) |> List.rev

(* Reset the type stack at a label end: whatever path was taken, the
   stack now holds [ts] at [entry]. *)
let reset_stack ctx entry ts =
  let rec drop stack h = if h > entry then drop (List.tl stack) (h - 1) else stack in
  ctx.cstack <- List.rev_append (List.rev ts) (drop ctx.cstack ctx.cheight);
  ctx.cheight <- entry + List.length ts;
  if ctx.cheight > ctx.cmax then ctx.cmax <- ctx.cheight

let kind_of_valtype = function I32 -> 0 | I64 -> 1 | F32 | F64 -> 2

(* Build the edge for a branch to label [n]. Loop back-edges resolve
   immediately; forward edges register themselves for patching when
   the target label closes. *)
let branch_edge ctx n : edge =
  let frame = List.nth ctx.cframes n in
  let arity = List.length frame.fr_label_types in
  let src = ctx.cnloc + ctx.cheight - arity and dst = ctx.cnloc + frame.fr_entry in
  let moves =
    if src = dst then [||]
    else
      Array.of_list
        (List.mapi
           (fun k t -> { mk = kind_of_valtype t; msrc = src + k; mdst = dst + k })
           frame.fr_label_types)
  in
  if frame.fr_is_loop then { target = frame.fr_start; moves }
  else begin
    let e = { target = -1; moves } in
    frame.fr_pending <- e :: frame.fr_pending;
    e
  end

let lkind_of ty pack =
  match (ty, pack) with
  | I32, None -> LI32
  | I64, None -> LI64
  | F32, None -> LF32
  | F64, None -> LF64
  | I32, Some (P8, SX) -> LI32_8S
  | I32, Some (P8, ZX) -> LI32_8U
  | I32, Some (P16, SX) -> LI32_16S
  | I32, Some (P16, ZX) -> LI32_16U
  | I64, Some (P8, SX) -> LI64_8S
  | I64, Some (P8, ZX) -> LI64_8U
  | I64, Some (P16, SX) -> LI64_16S
  | I64, Some (P16, ZX) -> LI64_16U
  | I64, Some (P32, SX) -> LI64_32S
  | I64, Some (P32, ZX) -> LI64_32U
  | (I32 | F32 | F64), Some (P32, _) | (F32 | F64), Some ((P8 | P16), _) ->
    invalid_arg "Fastinterp: invalid load"

let skind_of ty pack =
  match (ty, pack) with
  | I32, None -> SI32
  | I64, None -> SI64
  | F32, None -> SF32
  | F64, None -> SF64
  | I32, Some P8 -> SI32_8
  | I32, Some P16 -> SI32_16
  | I64, Some P8 -> SI64_8
  | I64, Some P16 -> SI64_16
  | I64, Some P32 -> SI64_32
  | (I32 | F32 | F64), Some P32 | (F32 | F64), Some (P8 | P16) ->
    invalid_arg "Fastinterp: invalid store"

(* Flatten one instruction. Returns [false] when the instruction
   diverts control unconditionally: the rest of the sequence is dead
   and must not be flattened. *)
let rec compile_instr (ctx : cctx) (i : instr) : bool =
  (* Absolute register-file index of the current stack top. *)
  let h () = ctx.cnloc + ctx.cheight in
  match i with
  | Nop -> true
  | Unreachable ->
    emit ctx OUnreachable;
    false
  | Drop ->
    ignore (pop_t ctx);
    true
  | Select ->
    ignore (pop_t ctx);
    let t = pop_t ctx in
    ignore (pop_t ctx);
    push_t ctx t;
    let d = h () - 1 in
    emit ctx (match t with I32 -> OSelectI d | I64 -> OSelectL d | F32 | F64 -> OSelectF d);
    true
  | Const v ->
    push_t ctx (type_of_value v);
    let d = h () - 1 in
    emit ctx
      (match v with
      | VI32 x -> OConstI (d, Int32.to_int x)
      | VI64 x -> OConstL (d, x)
      | VF32 x | VF64 x -> OConstF (d, x));
    true
  | LocalGet i ->
    let t = ctx.clocals.(i) in
    push_t ctx t;
    let d = h () - 1 in
    emit ctx
      (match t with
      | I32 -> OMovI (d, i)
      | I64 -> OMovL (d, i)
      | F32 | F64 -> OMovF (d, i));
    true
  | LocalSet i ->
    let t = pop_t ctx in
    let s = h () in
    (* Fusable: the producer of [s] can write the local directly. *)
    emit_peep ctx
      (match t with
      | I32 -> OMovI (i, s)
      | I64 -> OMovL (i, s)
      | F32 | F64 -> OMovF (i, s));
    true
  | LocalTee i ->
    let t = List.hd ctx.cstack in
    let s = h () - 1 in
    emit ctx
      (match t with
      | I32 -> OMovI (i, s)
      | I64 -> OMovL (i, s)
      | F32 | F64 -> OMovF (i, s));
    true
  | GlobalGet i ->
    let t = ctx.cglobals_t.(i).content in
    push_t ctx t;
    let d = h () - 1 in
    emit ctx
      (match t with
      | I32 -> OGlobalGetI (d, i)
      | I64 -> OGlobalGetL (d, i)
      | F32 | F64 -> OGlobalGetF (d, i));
    true
  | GlobalSet i ->
    let t = pop_t ctx in
    let s = h () in
    emit ctx
      (match t with
      | I32 -> OGlobalSetI (i, s)
      | I64 -> OGlobalSetL (i, s)
      | F32 | F64 -> OGlobalSetF (i, s));
    true
  | ITestop ty ->
    ignore (pop_t ctx);
    push_t ctx I32;
    let s = h () - 1 in
    emit ctx (match ty with I32 -> OTestI s | I64 -> OTestL s | F32 | F64 -> assert false);
    true
  | IUnop (ty, op) ->
    ignore (pop_t ctx);
    push_t ctx ty;
    let s = h () - 1 in
    emit ctx
      (match ty with
      | I32 -> OIUn32 (op, s)
      | I64 -> OIUn64 (op, s)
      | F32 | F64 -> assert false);
    true
  | IBinop (ty, op) ->
    ignore (pop_t ctx);
    ignore (pop_t ctx);
    push_t ctx ty;
    let d = h () - 1 in
    emit_peep ctx
      (match ty with
      | I32 -> (
        match op with
        | Add -> OAdd32 (d, d, d + 1)
        | Sub -> OSub32 (d, d, d + 1)
        | Mul -> OMul32 (d, d, d + 1)
        | And -> OAnd32 (d, d, d + 1)
        | Or -> OOr32 (d, d, d + 1)
        | Xor -> OXor32 (d, d, d + 1)
        | Shl -> OShl32 (d, d, d + 1)
        | ShrS -> OShrS32 (d, d, d + 1)
        | ShrU -> OShrU32 (d, d, d + 1)
        | DivS | DivU | RemS | RemU | Rotl | Rotr -> OIBin32 (op, d))
      | I64 -> OIBin64 (op, d)
      | F32 | F64 -> assert false);
    true
  | IRelop (ty, op) ->
    ignore (pop_t ctx);
    ignore (pop_t ctx);
    push_t ctx I32;
    let d = h () - 1 in
    emit_peep ctx
      (match ty with
      | I32 -> OIRel32 (op, d, d, d + 1)
      | I64 -> OIRel64 (op, d)
      | F32 | F64 -> assert false);
    true
  | FUnop (ty, op) ->
    ignore (pop_t ctx);
    push_t ctx ty;
    let s = h () - 1 in
    emit ctx (OFUn (op, s, (match ty with F32 -> true | _ -> false)));
    true
  | FBinop (ty, op) ->
    ignore (pop_t ctx);
    ignore (pop_t ctx);
    push_t ctx ty;
    let d = h () - 1 in
    emit_peep ctx
      (match ty with
      | F32 -> OFBin32 (op, d)
      | F64 -> (
        match op with
        | Fadd -> OFAdd64 (d, d, d + 1)
        | Fsub -> OFSub64 (d, d, d + 1)
        | Fmul -> OFMul64 (d, d, d + 1)
        | Fdiv -> OFDiv64 (d, d, d + 1)
        | Fmin | Fmax | Copysign -> OFBin64 (op, d))
      | I32 | I64 -> assert false);
    true
  | FRelop (_, op) ->
    ignore (pop_t ctx);
    ignore (pop_t ctx);
    push_t ctx I32;
    let d = h () - 1 in
    emit ctx (OFRel (op, d));
    true
  | Cvtop op ->
    ignore (pop_t ctx);
    let _, dst = Validate.cvt_types op in
    push_t ctx dst;
    let s = h () - 1 in
    emit_peep ctx (match op with F64ConvertI32S -> OCvtIF (s, s) | _ -> OCvt (op, s, s));
    true
  | Load (ty, pack, m) ->
    ignore (pop_t ctx);
    push_t ctx ty;
    let s = h () - 1 in
    emit_peep ctx
      (match lkind_of ty pack with
      | LI32 -> OLoadI32 (m.offset, s, s)
      | LI64 -> OLoadI64 (m.offset, s, s)
      | LF64 -> OLoadF64 (m.offset, s, s)
      | k -> OLoad (k, m.offset, s));
    true
  | Store (ty, pack, m) ->
    ignore (pop_t ctx);
    ignore (pop_t ctx);
    let s = h () in
    emit_peep ctx
      (match skind_of ty pack with
      | SI32 -> OStoreI32 (m.offset, s, s + 1)
      | SI64 -> OStoreI64 (m.offset, s, s + 1)
      | SF64 -> OStoreF64 (m.offset, s, s + 1)
      | k -> OStore (k, m.offset, s));
    true
  | MemorySize ->
    push_t ctx I32;
    emit ctx (OMemSize (h () - 1));
    true
  | MemoryGrow ->
    ignore (pop_t ctx);
    push_t ctx I32;
    emit ctx (OMemGrow (h () - 1));
    true
  | Call f ->
    let ft = ctx.cfunc_types.(f) in
    let n = List.length ft.params in
    let args_base = h () - n in
    ignore (pop_n ctx n);
    List.iter (push_t ctx) ft.results;
    emit ctx (OCall (f, args_base));
    true
  | CallIndirect tidx ->
    let ft = ctx.ctypes.(tidx) in
    ignore (pop_t ctx);
    let idx_slot = h () in
    let n = List.length ft.params in
    let args_base = h () - n in
    ignore (pop_n ctx n);
    List.iter (push_t ctx) ft.results;
    emit ctx (OCallIndirect (tidx, idx_slot, args_base));
    true
  | Block (bt, body) ->
    let ts = match bt with BlockEmpty -> [] | BlockVal t -> [ t ] in
    let entry = ctx.cheight in
    let fr =
      { fr_entry = entry; fr_label_types = ts; fr_is_loop = false; fr_start = 0; fr_pending = [] }
    in
    ctx.cframes <- fr :: ctx.cframes;
    ignore (compile_seq ctx body);
    ctx.cframes <- List.tl ctx.cframes;
    let e = here ctx in
    if fr.fr_pending <> [] then mark_here ctx;
    List.iter (fun edge -> edge.target <- e) fr.fr_pending;
    reset_stack ctx entry ts;
    true
  | Loop (bt, body) ->
    let ts = match bt with BlockEmpty -> [] | BlockVal t -> [ t ] in
    let entry = ctx.cheight in
    mark_here ctx;
    (* Under fuel, the header op sits at [fr_start]: charged on fall-in
       and by every back edge, i.e. once per iteration — the same
       charging points as the tree-walker's [iterate]. *)
    let start = here ctx in
    if ctx.cfuel then emit ctx OFuel;
    let fr =
      {
        fr_entry = entry;
        fr_label_types = [];
        fr_is_loop = true;
        fr_start = start;
        fr_pending = [];
      }
    in
    ctx.cframes <- fr :: ctx.cframes;
    ignore (compile_seq ctx body);
    ctx.cframes <- List.tl ctx.cframes;
    reset_stack ctx entry ts;
    true
  | If (bt, then_, else_) ->
    let ts = match bt with BlockEmpty -> [] | BlockVal t -> [ t ] in
    ignore (pop_t ctx);
    let cond_slot = ctx.cnloc + ctx.cheight in
    let entry = ctx.cheight in
    let saved_stack = ctx.cstack in
    let fr =
      { fr_entry = entry; fr_label_types = ts; fr_is_loop = false; fr_start = 0; fr_pending = [] }
    in
    ctx.cframes <- fr :: ctx.cframes;
    let else_edge = { target = -1; moves = [||] } in
    emit_peep ctx (OBrIfNot (cond_slot, else_edge));
    let then_falls = compile_seq ctx then_ in
    (* At the natural end of the then-arm the values already sit at
       [entry..]; skipping the else-arm needs no moves. *)
    if then_falls then begin
      let e = { target = -1; moves = [||] } in
      emit ctx (OJmp e);
      fr.fr_pending <- e :: fr.fr_pending
    end;
    mark_here ctx;
    else_edge.target <- here ctx;
    ctx.cstack <- saved_stack;
    ctx.cheight <- entry;
    ignore (compile_seq ctx else_);
    ctx.cframes <- List.tl ctx.cframes;
    let e = here ctx in
    if fr.fr_pending <> [] then mark_here ctx;
    List.iter (fun edge -> edge.target <- e) fr.fr_pending;
    reset_stack ctx entry ts;
    true
  | Br n ->
    emit ctx (OJmp (branch_edge ctx n));
    false
  | BrIf n ->
    ignore (pop_t ctx);
    let cond_slot = ctx.cnloc + ctx.cheight in
    emit_peep ctx (OBrIf (cond_slot, branch_edge ctx n));
    true
  | BrTable (targets, default) ->
    ignore (pop_t ctx);
    let cond_slot = ctx.cnloc + ctx.cheight in
    let edges = Array.of_list (List.map (fun tgt -> branch_edge ctx tgt) targets) in
    let dedge = branch_edge ctx default in
    emit ctx (OBrTable (cond_slot, edges, dedge));
    false
  | Return ->
    emit ctx (OJmp (branch_edge ctx (List.length ctx.cframes - 1)));
    false

and compile_seq ctx (body : instr list) : bool =
  match body with
  | [] -> true
  | i :: rest -> if compile_instr ctx i then compile_seq ctx rest else false

let compile_func ~fuel ctypes cfunc_types cglobals_t (f : func) (ft : functype) : cbody =
  let local_types = Array.of_list (ft.params @ f.locals) in
  let fn_frame =
    {
      fr_entry = 0;
      fr_label_types = ft.results;
      fr_is_loop = false;
      fr_start = 0;
      fr_pending = [];
    }
  in
  let nloc = Array.length local_types in
  let ctx =
    {
      ctypes;
      cfunc_types;
      cglobals_t;
      clocals = local_types;
      cnloc = nloc;
      cstack = [];
      cheight = 0;
      cmax = List.length ft.results;
      cframes = [ fn_frame ];
      cbuf = { arr = Array.make 32 OHalt; len = 0 };
      cmarks = Hashtbl.create 16;
      cfuel = fuel;
    }
  in
  if fuel then emit ctx OFuel (* function entry *);
  ignore (compile_seq ctx f.body);
  (* Returns and branches to the function label land on the trailing
     OHalt with the results already moved to stack slots 0..arity-1
     (register-file indices nloc..); natural fall-through leaves them
     there by construction. *)
  let e = here ctx in
  if fn_frame.fr_pending <> [] then mark_here ctx;
  List.iter (fun edge -> edge.target <- e) fn_frame.fr_pending;
  emit ctx OHalt;
  {
    cb_code = Array.sub ctx.cbuf.arr 0 ctx.cbuf.len;
    cb_nslots = nloc + ctx.cmax;
    cb_nloc = nloc;
    cb_param_types = Array.of_list ft.params;
    cb_result_types = Array.of_list ft.results;
  }

(** Flatten a {e validated} module. The result is instance-free and
    reusable: instantiate it any number of times. With [~fuel], the
    flattened code
    charges {!Instance.Fuel} once per function entry and per loop
    iteration — for running untrusted modules under a budget; never
    enable it for cmodules that go into a measurement-keyed cache, or
    metered and unmetered users would share one compiled form. *)
let compile ?(fuel = false) (m : module_) : cmodule =
  let cm_types = Array.of_list m.types in
  let imp_ftypes = List.map (fun t -> cm_types.(t)) (imported_funcs m) in
  let own_ftypes = List.map (fun (f : func) -> cm_types.(f.ftype)) m.funcs in
  let cm_func_types = Array.of_list (imp_ftypes @ own_ftypes) in
  let cglobals_t =
    Array.of_list (imported_globals m @ List.map (fun (g : global) -> g.gtype) m.globals)
  in
  let cm_bodies =
    Array.of_list
      (List.map
         (fun (f : func) -> compile_func ~fuel cm_types cm_func_types cglobals_t f cm_types.(f.ftype))
         m.funcs)
  in
  { cm_module = m; cm_types; cm_func_types; cm_bodies; cm_n_imported = List.length imp_ftypes }

(* ------------------------------------------------------------------ *)
(* Execution *)

let apply_moves fr (ms : mv array) =
  for k = 0 to Array.length ms - 1 do
    let m = Array.unsafe_get ms k in
    if m.mk = 0 then fr.xi.(m.mdst) <- fr.xi.(m.msrc)
    else if m.mk = 1 then fr.xl.(m.mdst) <- fr.xl.(m.msrc)
    else fr.xf.(m.mdst) <- fr.xf.(m.msrc)
  done

let exec_iun32 ri op s =
  match op with
  | Clz -> ri.(s) <- Int32.to_int (Numerics.I32_ops.clz (Int32.of_int ri.(s)))
  | Ctz -> ri.(s) <- Int32.to_int (Numerics.I32_ops.ctz (Int32.of_int ri.(s)))
  | Popcnt -> ri.(s) <- Int32.to_int (Numerics.I32_ops.popcnt (Int32.of_int ri.(s)))

let exec_iun64 rl op s =
  match op with
  | Clz -> rl.(s) <- Numerics.I64_ops.clz rl.(s)
  | Ctz -> rl.(s) <- Numerics.I64_ops.ctz rl.(s)
  | Popcnt -> rl.(s) <- Numerics.I64_ops.popcnt rl.(s)

let exec_ibin32 (ri : int array) op d =
  match op with
  | Add -> ri.(d) <- wrap32 (ri.(d) + ri.(d + 1))
  | Sub -> ri.(d) <- wrap32 (ri.(d) - ri.(d + 1))
  | Mul -> ri.(d) <- wrap32 (ri.(d) * ri.(d + 1))
  | DivS ->
    let a = ri.(d) and b = ri.(d + 1) in
    if b = 0 then raise (Trap "integer divide by zero")
    else if a = -0x80000000 && b = -1 then raise (Trap "integer overflow")
    else ri.(d) <- a / b
  | DivU ->
    let b = u32 ri.(d + 1) in
    if b = 0 then raise (Trap "integer divide by zero") else ri.(d) <- wrap32 (u32 ri.(d) / b)
  | RemS ->
    let a = ri.(d) and b = ri.(d + 1) in
    if b = 0 then raise (Trap "integer divide by zero")
    else if a = -0x80000000 && b = -1 then ri.(d) <- 0
    else ri.(d) <- a mod b
  | RemU ->
    let b = u32 ri.(d + 1) in
    if b = 0 then raise (Trap "integer divide by zero") else ri.(d) <- wrap32 (u32 ri.(d) mod b)
  | And -> ri.(d) <- ri.(d) land ri.(d + 1)
  | Or -> ri.(d) <- ri.(d) lor ri.(d + 1)
  | Xor -> ri.(d) <- ri.(d) lxor ri.(d + 1)
  | Shl -> ri.(d) <- wrap32 (ri.(d) lsl (ri.(d + 1) land 31))
  | ShrS -> ri.(d) <- ri.(d) asr (ri.(d + 1) land 31)
  | ShrU -> ri.(d) <- wrap32 (u32 ri.(d) lsr (ri.(d + 1) land 31))
  | Rotl ->
    let n = ri.(d + 1) land 31 in
    let x = u32 ri.(d) in
    ri.(d) <- (if n = 0 then wrap32 x else wrap32 ((x lsl n) lor (x lsr (32 - n))))
  | Rotr ->
    let n = ri.(d + 1) land 31 in
    let x = u32 ri.(d) in
    ri.(d) <- (if n = 0 then wrap32 x else wrap32 ((x lsr n) lor (x lsl (32 - n))))

let exec_ibin64 (rl : int64 array) op d =
  let open Numerics.I64_ops in
  match op with
  | Add -> rl.(d) <- Int64.add rl.(d) rl.(d + 1)
  | Sub -> rl.(d) <- Int64.sub rl.(d) rl.(d + 1)
  | Mul -> rl.(d) <- Int64.mul rl.(d) rl.(d + 1)
  | DivS -> rl.(d) <- div_s rl.(d) rl.(d + 1)
  | DivU -> rl.(d) <- div_u rl.(d) rl.(d + 1)
  | RemS -> rl.(d) <- rem_s rl.(d) rl.(d + 1)
  | RemU -> rl.(d) <- rem_u rl.(d) rl.(d + 1)
  | And -> rl.(d) <- Int64.logand rl.(d) rl.(d + 1)
  | Or -> rl.(d) <- Int64.logor rl.(d) rl.(d + 1)
  | Xor -> rl.(d) <- Int64.logxor rl.(d) rl.(d + 1)
  | Shl -> rl.(d) <- shl rl.(d) rl.(d + 1)
  | ShrS -> rl.(d) <- shr_s rl.(d) rl.(d + 1)
  | ShrU -> rl.(d) <- shr_u rl.(d) rl.(d + 1)
  | Rotl -> rl.(d) <- rotl rl.(d) rl.(d + 1)
  | Rotr -> rl.(d) <- rotr rl.(d) rl.(d + 1)

let exec_irel64 (ri : int array) (rl : int64 array) op d =
  let open Numerics.I64_ops in
  match op with
  | Eq -> ri.(d) <- (if Int64.equal rl.(d) rl.(d + 1) then 1 else 0)
  | Ne -> ri.(d) <- (if Int64.equal rl.(d) rl.(d + 1) then 0 else 1)
  | LtS -> ri.(d) <- (if Int64.compare rl.(d) rl.(d + 1) < 0 then 1 else 0)
  | LtU -> ri.(d) <- (if lt_u rl.(d) rl.(d + 1) then 1 else 0)
  | GtS -> ri.(d) <- (if Int64.compare rl.(d) rl.(d + 1) > 0 then 1 else 0)
  | GtU -> ri.(d) <- (if gt_u rl.(d) rl.(d + 1) then 1 else 0)
  | LeS -> ri.(d) <- (if Int64.compare rl.(d) rl.(d + 1) <= 0 then 1 else 0)
  | LeU -> ri.(d) <- (if le_u rl.(d) rl.(d + 1) then 1 else 0)
  | GeS -> ri.(d) <- (if Int64.compare rl.(d) rl.(d + 1) >= 0 then 1 else 0)
  | GeU -> ri.(d) <- (if ge_u rl.(d) rl.(d + 1) then 1 else 0)

let exec_fun_ (rf : float array) op s f32res =
  let f =
    match op with
    | Abs -> Float.abs
    | Neg -> fun x -> -.x
    | Ceil -> Float.ceil
    | Floor -> Float.floor
    | Trunc -> Float.trunc
    | Nearest -> Numerics.f_nearest
    | Sqrt -> Float.sqrt
  in
  rf.(s) <- (if f32res then Numerics.to_f32 (f rf.(s)) else f rf.(s))

let exec_fbin32 (rf : float array) op d =
  let apply : float -> float -> float =
    match op with
    | Fadd -> ( +. )
    | Fsub -> ( -. )
    | Fmul -> ( *. )
    | Fdiv -> ( /. )
    | Fmin -> Numerics.f_min
    | Fmax -> Numerics.f_max
    | Copysign -> Float.copy_sign
  in
  rf.(d) <- Numerics.to_f32 (apply rf.(d) rf.(d + 1))

let exec_fbin64 (rf : float array) op d =
  match op with
  | Fadd -> rf.(d) <- rf.(d) +. rf.(d + 1)
  | Fsub -> rf.(d) <- rf.(d) -. rf.(d + 1)
  | Fmul -> rf.(d) <- rf.(d) *. rf.(d + 1)
  | Fdiv -> rf.(d) <- rf.(d) /. rf.(d + 1)
  | Fmin -> rf.(d) <- Numerics.f_min rf.(d) (rf.(d + 1))
  | Fmax -> rf.(d) <- Numerics.f_max rf.(d) (rf.(d + 1))
  | Copysign -> rf.(d) <- Float.copy_sign rf.(d) (rf.(d + 1))

let exec_cvt fr op d s =
  let open Numerics in
  match op with
  | I32WrapI64 -> fr.xi.(d) <- wrap32 (Int64.to_int fr.xl.(s))
  | I32TruncF32S | I32TruncF64S -> fr.xi.(d) <- Int32.to_int (trunc_to_i32_s fr.xf.(s))
  | I32TruncF32U | I32TruncF64U -> fr.xi.(d) <- Int32.to_int (trunc_to_i32_u fr.xf.(s))
  | I64ExtendI32S -> fr.xl.(d) <- Int64.of_int fr.xi.(s)
  | I64ExtendI32U -> fr.xl.(d) <- Int64.of_int (u32 fr.xi.(s))
  | I64TruncF32S | I64TruncF64S -> fr.xl.(d) <- trunc_to_i64_s fr.xf.(s)
  | I64TruncF32U | I64TruncF64U -> fr.xl.(d) <- trunc_to_i64_u fr.xf.(s)
  | F32ConvertI32S -> fr.xf.(d) <- to_f32 (float_of_int fr.xi.(s))
  | F32ConvertI32U -> fr.xf.(d) <- to_f32 (float_of_int (u32 fr.xi.(s)))
  | F32ConvertI64S -> fr.xf.(d) <- to_f32 (Int64.to_float fr.xl.(s))
  | F32ConvertI64U -> fr.xf.(d) <- to_f32 (u64_to_float fr.xl.(s))
  | F32DemoteF64 -> fr.xf.(d) <- to_f32 fr.xf.(s)
  | F64ConvertI32S -> fr.xf.(d) <- float_of_int fr.xi.(s)
  | F64ConvertI32U -> fr.xf.(d) <- float_of_int (u32 fr.xi.(s))
  | F64ConvertI64S -> fr.xf.(d) <- Int64.to_float fr.xl.(s)
  | F64ConvertI64U -> fr.xf.(d) <- u64_to_float fr.xl.(s)
  | F64PromoteF32 -> fr.xf.(d) <- fr.xf.(s)
  | I32ReinterpretF32 -> fr.xi.(d) <- Int32.to_int (Int32.bits_of_float fr.xf.(s))
  | I64ReinterpretF64 -> fr.xl.(d) <- Int64.bits_of_float fr.xf.(s)
  | F32ReinterpretI32 -> fr.xf.(d) <- Int32.float_of_bits (Int32.of_int fr.xi.(s))
  | F64ReinterpretI64 -> fr.xf.(d) <- Int64.float_of_bits fr.xl.(s)

(* Generic (cold) load/store path: sub-width and f32 flavours. The
   32/64-bit flavours have dedicated ops inlined in the dispatch loop
   but are kept here for completeness. *)
let exec_load fr kind off s =
  let m = fr.inst.fmemories.(0) in
  let data = m.Memory.data in
  let a = u32 fr.xi.(s) + off in
  match kind with
  | LI32 ->
    check_addr data a 4;
    fr.xi.(s) <- Int32.to_int (Bytes.get_int32_le data a)
  | LI64 ->
    check_addr data a 8;
    fr.xl.(s) <- Bytes.get_int64_le data a
  | LF32 ->
    check_addr data a 4;
    fr.xf.(s) <- Int32.float_of_bits (Bytes.get_int32_le data a)
  | LF64 ->
    check_addr data a 8;
    fr.xf.(s) <- Int64.float_of_bits (Bytes.get_int64_le data a)
  | LI32_8S ->
    check_addr data a 1;
    fr.xi.(s) <- Bytes.get_int8 data a
  | LI32_8U ->
    check_addr data a 1;
    fr.xi.(s) <- Bytes.get_uint8 data a
  | LI32_16S ->
    check_addr data a 2;
    fr.xi.(s) <- Bytes.get_int16_le data a
  | LI32_16U ->
    check_addr data a 2;
    fr.xi.(s) <- Bytes.get_uint16_le data a
  | LI64_8S ->
    check_addr data a 1;
    fr.xl.(s) <- Int64.of_int (Bytes.get_int8 data a)
  | LI64_8U ->
    check_addr data a 1;
    fr.xl.(s) <- Int64.of_int (Bytes.get_uint8 data a)
  | LI64_16S ->
    check_addr data a 2;
    fr.xl.(s) <- Int64.of_int (Bytes.get_int16_le data a)
  | LI64_16U ->
    check_addr data a 2;
    fr.xl.(s) <- Int64.of_int (Bytes.get_uint16_le data a)
  | LI64_32S ->
    check_addr data a 4;
    fr.xl.(s) <- Int64.of_int32 (Bytes.get_int32_le data a)
  | LI64_32U ->
    check_addr data a 4;
    fr.xl.(s) <- Int64.logand (Int64.of_int32 (Bytes.get_int32_le data a)) 0xffffffffL

let exec_store fr kind off s =
  let m = fr.inst.fmemories.(0) in
  let data = m.Memory.data in
  let a = u32 fr.xi.(s) + off in
  match kind with
  | SI32 ->
    check_addr data a 4;
    Bytes.set_int32_le data a (Int32.of_int fr.xi.(s + 1))
  | SI64 ->
    check_addr data a 8;
    Bytes.set_int64_le data a fr.xl.(s + 1)
  | SF32 ->
    check_addr data a 4;
    Bytes.set_int32_le data a (Int32.bits_of_float fr.xf.(s + 1))
  | SF64 ->
    check_addr data a 8;
    Bytes.set_int64_le data a (Int64.bits_of_float fr.xf.(s + 1))
  | SI32_8 ->
    check_addr data a 1;
    Bytes.set_uint8 data a (fr.xi.(s + 1) land 0xff)
  | SI32_16 ->
    check_addr data a 2;
    Bytes.set_uint16_le data a (fr.xi.(s + 1) land 0xffff)
  | SI64_8 ->
    check_addr data a 1;
    Bytes.set_uint8 data a (Int64.to_int fr.xl.(s + 1) land 0xff)
  | SI64_16 ->
    check_addr data a 2;
    Bytes.set_uint16_le data a (Int64.to_int fr.xl.(s + 1) land 0xffff)
  | SI64_32 ->
    check_addr data a 4;
    Bytes.set_int32_le data a (Int64.to_int32 fr.xl.(s + 1))

(* The dispatch loop: fetch, match, continue at [pc + 1] or at the
   precomputed edge target. A tail-recursive inner loop keeps the
   program counter in a register (no ref cell), the register files are
   hoisted out of the frame, and slot accesses are unchecked — indices
   are static stack heights guaranteed in-range by validation. The hot
   arms (i32 index arithmetic, f64 arithmetic, comparisons, word-sized
   loads/stores) are resolved by this single match; cold arms call the
   generic helpers above. *)
let oob () = raise (Trap "out of bounds memory access")

let mem0_data inst =
  if Array.length inst.fmemories = 0 then Bytes.empty
  else (Array.unsafe_get inst.fmemories 0).Memory.data

let rec dispatch (fr : frame) (xi : int array) (xl : int64 array) (xf : float array)
    (inst : finstance) (code : op array) (data : Bytes.t) (pc : int) : unit =
  match Array.unsafe_get code pc with
    | OHalt -> ()
    | OUnreachable -> raise (Trap "unreachable executed")
    | OFuel ->
      Fuel.consume ();
      dispatch fr xi xl xf inst code data (pc + 1)
    | OJmp e ->
      if Array.length e.moves <> 0 then apply_moves fr e.moves;
      dispatch fr xi xl xf inst code data e.target
    | OBrIf (s, e) ->
      if Array.unsafe_get xi s <> 0 then begin
        if Array.length e.moves <> 0 then apply_moves fr e.moves;
        dispatch fr xi xl xf inst code data e.target
      end
      else dispatch fr xi xl xf inst code data (pc + 1)
    | OBrIfNot (s, e) ->
      if Array.unsafe_get xi s = 0 then begin
        if Array.length e.moves <> 0 then apply_moves fr e.moves;
        dispatch fr xi xl xf inst code data e.target
      end
      else dispatch fr xi xl xf inst code data (pc + 1)
    | OBrTable (s, edges, dedge) ->
      let i = u32 (Array.unsafe_get xi s) in
      let e = if i < Array.length edges then edges.(i) else dedge in
      if Array.length e.moves <> 0 then apply_moves fr e.moves;
      dispatch fr xi xl xf inst code data e.target
    | OCall (fidx, base) ->
      call_func fr (Array.unsafe_get inst.ffuncs fidx) base;
      (* the callee may have grown memory: refetch the bytes *)
      dispatch fr xi xl xf inst code (mem0_data inst) (pc + 1)
    | OCallIndirect (tidx, s, base) ->
      let table = inst.ftables.(0) in
      let i = u32 (Array.unsafe_get xi s) in
      if i >= Array.length table then raise (Trap "undefined element");
      (match table.(i) with
      | None -> raise (Trap "uninitialized element")
      | Some callee ->
        if not (functype_equal (type_of_ffuncinst callee) inst.fmod.cm_types.(tidx)) then
          raise (Trap "indirect call type mismatch");
        call_func fr callee base);
      dispatch fr xi xl xf inst code (mem0_data inst) (pc + 1)
    | OConstI (d, v) ->
      Array.unsafe_set xi d v;
      dispatch fr xi xl xf inst code data (pc + 1)
    | OConstL (d, v) ->
      Array.unsafe_set xl d v;
      dispatch fr xi xl xf inst code data (pc + 1)
    | OConstF (d, v) ->
      Array.unsafe_set xf d v;
      dispatch fr xi xl xf inst code data (pc + 1)
    | OMovI (d, s) ->
      Array.unsafe_set xi d (Array.unsafe_get xi s);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OMovL (d, s) ->
      Array.unsafe_set xl d (Array.unsafe_get xl s);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OMovF (d, s) ->
      Array.unsafe_set xf d (Array.unsafe_get xf s);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OGlobalGetI (d, i) ->
      (match inst.fglobals.(i).fgvalue with
      | VI32 x -> Array.unsafe_set xi d (Int32.to_int x)
      | VI64 _ | VF32 _ | VF64 _ -> raise (Trap "global type confusion"));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OGlobalGetL (d, i) ->
      (match inst.fglobals.(i).fgvalue with
      | VI64 x -> Array.unsafe_set xl d x
      | VI32 _ | VF32 _ | VF64 _ -> raise (Trap "global type confusion"));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OGlobalGetF (d, i) ->
      (match inst.fglobals.(i).fgvalue with
      | VF32 x | VF64 x -> Array.unsafe_set xf d x
      | VI32 _ | VI64 _ -> raise (Trap "global type confusion"));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OGlobalSetI (i, s) ->
      inst.fglobals.(i).fgvalue <- VI32 (Int32.of_int (Array.unsafe_get xi s));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OGlobalSetL (i, s) ->
      inst.fglobals.(i).fgvalue <- VI64 (Array.unsafe_get xl s);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OGlobalSetF (i, s) ->
      (let g = inst.fglobals.(i) in
       g.fgvalue <-
         (match g.fgty.content with
         | F32 -> VF32 (Array.unsafe_get xf s)
         | _ -> VF64 (Array.unsafe_get xf s)));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OSelectI d ->
      if Array.unsafe_get xi (d + 2) = 0 then
        Array.unsafe_set xi d (Array.unsafe_get xi (d + 1));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OSelectL d ->
      if Array.unsafe_get xi (d + 2) = 0 then
        Array.unsafe_set xl d (Array.unsafe_get xl (d + 1));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OSelectF d ->
      if Array.unsafe_get xi (d + 2) = 0 then
        Array.unsafe_set xf d (Array.unsafe_get xf (d + 1));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OTestI s ->
      Array.unsafe_set xi s (if Array.unsafe_get xi s = 0 then 1 else 0);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OTestL s ->
      Array.unsafe_set xi s (if Int64.equal (Array.unsafe_get xl s) 0L then 1 else 0);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OIUn32 (op, s) ->
      exec_iun32 xi op s;
      dispatch fr xi xl xf inst code data (pc + 1)
    | OIUn64 (op, s) ->
      exec_iun64 xl op s;
      dispatch fr xi xl xf inst code data (pc + 1)
    | OAdd32 (d, a, b) ->
      Array.unsafe_set xi d (wrap32 (Array.unsafe_get xi a + Array.unsafe_get xi b));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OSub32 (d, a, b) ->
      Array.unsafe_set xi d (wrap32 (Array.unsafe_get xi a - Array.unsafe_get xi b));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OMul32 (d, a, b) ->
      Array.unsafe_set xi d (wrap32 (Array.unsafe_get xi a * Array.unsafe_get xi b));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OAnd32 (d, a, b) ->
      Array.unsafe_set xi d (Array.unsafe_get xi a land Array.unsafe_get xi b);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OOr32 (d, a, b) ->
      Array.unsafe_set xi d (Array.unsafe_get xi a lor Array.unsafe_get xi b);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OXor32 (d, a, b) ->
      Array.unsafe_set xi d (Array.unsafe_get xi a lxor Array.unsafe_get xi b);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OShl32 (d, a, b) ->
      Array.unsafe_set xi d (wrap32 (Array.unsafe_get xi a lsl (Array.unsafe_get xi b land 31)));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OShrS32 (d, a, b) ->
      Array.unsafe_set xi d (Array.unsafe_get xi a asr (Array.unsafe_get xi b land 31));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OShrU32 (d, a, b) ->
      Array.unsafe_set xi d
        (wrap32 (u32 (Array.unsafe_get xi a) lsr (Array.unsafe_get xi b land 31)));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OBin3I32 (op, d, a, v) ->
      let x = Array.unsafe_get xi a in
      Array.unsafe_set xi d
        (match op with
        | Add -> wrap32 (x + v)
        | Sub -> wrap32 (x - v)
        | Mul -> wrap32 (x * v)
        | And -> x land v
        | Or -> x lor v
        | Xor -> x lxor v
        | Shl -> wrap32 (x lsl (v land 31))
        | ShrS -> x asr (v land 31)
        | ShrU -> wrap32 (u32 x lsr (v land 31))
        | DivS | DivU | RemS | RemU | Rotl | Rotr ->
          (* never emitted by the fuser for these *)
          raise (Trap "unsupported fused op"));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OIBin32 (op, d) ->
      exec_ibin32 xi op d;
      dispatch fr xi xl xf inst code data (pc + 1)
    | OIBin64 (op, d) ->
      exec_ibin64 xl op d;
      dispatch fr xi xl xf inst code data (pc + 1)
    | OIRel32 (op, d, sa, sb) ->
      let a = Array.unsafe_get xi sa and b = Array.unsafe_get xi sb in
      Array.unsafe_set xi d
        (match op with
        | Eq -> if a = b then 1 else 0
        | Ne -> if a <> b then 1 else 0
        | LtS -> if a < b then 1 else 0
        | LtU -> if u32 a < u32 b then 1 else 0
        | GtS -> if a > b then 1 else 0
        | GtU -> if u32 a > u32 b then 1 else 0
        | LeS -> if a <= b then 1 else 0
        | LeU -> if u32 a <= u32 b then 1 else 0
        | GeS -> if a >= b then 1 else 0
        | GeU -> if u32 a >= u32 b then 1 else 0);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OIRelI32 (op, d, sa, b) ->
      let a = Array.unsafe_get xi sa in
      Array.unsafe_set xi d
        (match op with
        | Eq -> if a = b then 1 else 0
        | Ne -> if a <> b then 1 else 0
        | LtS -> if a < b then 1 else 0
        | LtU -> if u32 a < u32 b then 1 else 0
        | GtS -> if a > b then 1 else 0
        | GtU -> if u32 a > u32 b then 1 else 0
        | LeS -> if a <= b then 1 else 0
        | LeU -> if u32 a <= u32 b then 1 else 0
        | GeS -> if a >= b then 1 else 0
        | GeU -> if u32 a >= u32 b then 1 else 0);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OBrCmpR32 (op, sa, sb, e) ->
      let a = Array.unsafe_get xi sa and b = Array.unsafe_get xi sb in
      let taken =
        match op with
        | Eq -> a = b
        | Ne -> a <> b
        | LtS -> a < b
        | LtU -> u32 a < u32 b
        | GtS -> a > b
        | GtU -> u32 a > u32 b
        | LeS -> a <= b
        | LeU -> u32 a <= u32 b
        | GeS -> a >= b
        | GeU -> u32 a >= u32 b
      in
      if taken then begin
        if Array.length e.moves <> 0 then apply_moves fr e.moves;
        dispatch fr xi xl xf inst code data e.target
      end
      else dispatch fr xi xl xf inst code data (pc + 1)
    | OBrCmpI32 (op, sa, b, e) ->
      let a = Array.unsafe_get xi sa in
      let taken =
        match op with
        | Eq -> a = b
        | Ne -> a <> b
        | LtS -> a < b
        | LtU -> u32 a < u32 b
        | GtS -> a > b
        | GtU -> u32 a > u32 b
        | LeS -> a <= b
        | LeU -> u32 a <= u32 b
        | GeS -> a >= b
        | GeU -> u32 a >= u32 b
      in
      if taken then begin
        if Array.length e.moves <> 0 then apply_moves fr e.moves;
        dispatch fr xi xl xf inst code data e.target
      end
      else dispatch fr xi xl xf inst code data (pc + 1)
    | OIRel64 (op, d) ->
      exec_irel64 xi xl op d;
      dispatch fr xi xl xf inst code data (pc + 1)
    | OFUn (op, s, f32res) ->
      exec_fun_ xf op s f32res;
      dispatch fr xi xl xf inst code data (pc + 1)
    | OFAdd64 (d, a, b) ->
      Array.unsafe_set xf d (Array.unsafe_get xf a +. Array.unsafe_get xf b);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OFSub64 (d, a, b) ->
      Array.unsafe_set xf d (Array.unsafe_get xf a -. Array.unsafe_get xf b);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OFMul64 (d, a, b) ->
      Array.unsafe_set xf d (Array.unsafe_get xf a *. Array.unsafe_get xf b);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OFDiv64 (d, a, b) ->
      Array.unsafe_set xf d (Array.unsafe_get xf a /. Array.unsafe_get xf b);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OFBin32 (op, d) ->
      exec_fbin32 xf op d;
      dispatch fr xi xl xf inst code data (pc + 1)
    | OFBin64 (op, d) ->
      exec_fbin64 xf op d;
      dispatch fr xi xl xf inst code data (pc + 1)
    | OFRel (op, d) ->
      let a = Array.unsafe_get xf d and b = Array.unsafe_get xf (d + 1) in
      Array.unsafe_set xi d
        (match op with
        | Feq -> if a = b then 1 else 0
        | Fne -> if a <> b then 1 else 0
        | Flt -> if a < b then 1 else 0
        | Fgt -> if a > b then 1 else 0
        | Fle -> if a <= b then 1 else 0
        | Fge -> if a >= b then 1 else 0);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OCvt (op, d, sc) ->
      exec_cvt fr op d sc;
      dispatch fr xi xl xf inst code data (pc + 1)
    | OCvtIF (d, sc) ->
      Array.unsafe_set xf d (float_of_int (Array.unsafe_get xi sc));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OFImm (op, d, a, c) ->
      let x = Array.unsafe_get xf a in
      Array.unsafe_set xf d
        (match op with
        | Fadd -> x +. c
        | Fsub -> x -. c
        | Fmul -> x *. c
        | Fdiv -> x /. c
        | Fmin | Fmax | Copysign -> assert false (* never emitted *));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OLoadI32 (off, d, s) ->
      let a = u32 (Array.unsafe_get xi s) + off in
      if a + 4 > Bytes.length data then oob ();
      if Sys.big_endian then Array.unsafe_set xi d (Int32.to_int (swap32 (get32u data a)))
      else Array.unsafe_set xi d (Int32.to_int (get32u data a));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OLoadI64 (off, d, s) ->
      let a = u32 (Array.unsafe_get xi s) + off in
      if a + 8 > Bytes.length data then oob ();
      if Sys.big_endian then Array.unsafe_set xl d (swap64 (get64u data a))
      else Array.unsafe_set xl d (get64u data a);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OLoadF64 (off, d, s) ->
      let a = u32 (Array.unsafe_get xi s) + off in
      if a + 8 > Bytes.length data then oob ();
      if Sys.big_endian then Array.unsafe_set xf d (Int64.float_of_bits (swap64 (get64u data a)))
      else Array.unsafe_set xf d (Int64.float_of_bits (get64u data a));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OStoreI32 (off, s, v) ->
      let a = u32 (Array.unsafe_get xi s) + off in
      if a + 4 > Bytes.length data then oob ();
      if Sys.big_endian then set32u data a (swap32 (Int32.of_int (Array.unsafe_get xi v)))
      else set32u data a (Int32.of_int (Array.unsafe_get xi v));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OStoreI64 (off, s, v) ->
      let a = u32 (Array.unsafe_get xi s) + off in
      if a + 8 > Bytes.length data then oob ();
      if Sys.big_endian then set64u data a (swap64 (Array.unsafe_get xl v))
      else set64u data a (Array.unsafe_get xl v);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OStoreF64 (off, s, v) ->
      let a = u32 (Array.unsafe_get xi s) + off in
      if a + 8 > Bytes.length data then oob ();
      if Sys.big_endian then
        set64u data a (swap64 (Int64.bits_of_float (Array.unsafe_get xf v)))
      else set64u data a (Int64.bits_of_float (Array.unsafe_get xf v));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OScaled (d, x, k, b) ->
      Array.unsafe_set xi d (wrap32 ((Array.unsafe_get xi x lsl k) + b));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OScaledR (d, x, k, r) ->
      Array.unsafe_set xi d (wrap32 ((Array.unsafe_get xi x lsl k) + Array.unsafe_get xi r));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OLoadI32X (off, b, d, x, k) ->
      let a = u32 (wrap32 ((Array.unsafe_get xi x lsl k) + b)) + off in
      if a + 4 > Bytes.length data then oob ();
      if Sys.big_endian then Array.unsafe_set xi d (Int32.to_int (swap32 (get32u data a)))
      else Array.unsafe_set xi d (Int32.to_int (get32u data a));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OLoadI64X (off, b, d, x, k) ->
      let a = u32 (wrap32 ((Array.unsafe_get xi x lsl k) + b)) + off in
      if a + 8 > Bytes.length data then oob ();
      if Sys.big_endian then Array.unsafe_set xl d (swap64 (get64u data a))
      else Array.unsafe_set xl d (get64u data a);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OLoadF64X (off, b, d, x, k) ->
      let a = u32 (wrap32 ((Array.unsafe_get xi x lsl k) + b)) + off in
      if a + 8 > Bytes.length data then oob ();
      if Sys.big_endian then Array.unsafe_set xf d (Int64.float_of_bits (swap64 (get64u data a)))
      else Array.unsafe_set xf d (Int64.float_of_bits (get64u data a));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OLoadI32RX (off, d, x, k, r) ->
      let a =
        u32 (wrap32 ((Array.unsafe_get xi x lsl k) + Array.unsafe_get xi r)) + off
      in
      if a + 4 > Bytes.length data then oob ();
      if Sys.big_endian then Array.unsafe_set xi d (Int32.to_int (swap32 (get32u data a)))
      else Array.unsafe_set xi d (Int32.to_int (get32u data a));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OLoadF64RX (off, d, x, k, r) ->
      let a =
        u32 (wrap32 ((Array.unsafe_get xi x lsl k) + Array.unsafe_get xi r)) + off
      in
      if a + 8 > Bytes.length data then oob ();
      if Sys.big_endian then Array.unsafe_set xf d (Int64.float_of_bits (swap64 (get64u data a)))
      else Array.unsafe_set xf d (Int64.float_of_bits (get64u data a));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OStoreI32X (off, b, x, k, v) ->
      let a = u32 (wrap32 ((Array.unsafe_get xi x lsl k) + b)) + off in
      if a + 4 > Bytes.length data then oob ();
      if Sys.big_endian then set32u data a (swap32 (Int32.of_int (Array.unsafe_get xi v)))
      else set32u data a (Int32.of_int (Array.unsafe_get xi v));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OStoreI64X (off, b, x, k, v) ->
      let a = u32 (wrap32 ((Array.unsafe_get xi x lsl k) + b)) + off in
      if a + 8 > Bytes.length data then oob ();
      if Sys.big_endian then set64u data a (swap64 (Array.unsafe_get xl v))
      else set64u data a (Array.unsafe_get xl v);
      dispatch fr xi xl xf inst code data (pc + 1)
    | OStoreF64X (off, b, x, k, v) ->
      let a = u32 (wrap32 ((Array.unsafe_get xi x lsl k) + b)) + off in
      if a + 8 > Bytes.length data then oob ();
      if Sys.big_endian then set64u data a (swap64 (Int64.bits_of_float (Array.unsafe_get xf v)))
      else set64u data a (Int64.bits_of_float (Array.unsafe_get xf v));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OStoreI32RX (off, x, k, r, v) ->
      let a =
        u32 (wrap32 ((Array.unsafe_get xi x lsl k) + Array.unsafe_get xi r)) + off
      in
      if a + 4 > Bytes.length data then oob ();
      if Sys.big_endian then set32u data a (swap32 (Int32.of_int (Array.unsafe_get xi v)))
      else set32u data a (Int32.of_int (Array.unsafe_get xi v));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OStoreF64RX (off, x, k, r, v) ->
      let a =
        u32 (wrap32 ((Array.unsafe_get xi x lsl k) + Array.unsafe_get xi r)) + off
      in
      if a + 8 > Bytes.length data then oob ();
      if Sys.big_endian then set64u data a (swap64 (Int64.bits_of_float (Array.unsafe_get xf v)))
      else set64u data a (Int64.bits_of_float (Array.unsafe_get xf v));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OLoad (kind, off, s) ->
      exec_load fr kind off s;
      dispatch fr xi xl xf inst code data (pc + 1)
    | OStore (kind, off, s) ->
      exec_store fr kind off s;
      dispatch fr xi xl xf inst code data (pc + 1)
    | OMemSize d ->
      Array.unsafe_set xi d (Memory.size_pages inst.fmemories.(0));
      dispatch fr xi xl xf inst code data (pc + 1)
    | OMemGrow s ->
      Array.unsafe_set xi s (Memory.grow inst.fmemories.(0) (Array.unsafe_get xi s));
      dispatch fr xi xl xf inst code (mem0_data inst) (pc + 1)

and exec (fr : frame) (code : op array) : unit =
  let inst = fr.inst in
  dispatch fr fr.xi fr.xl fr.xf inst code (mem0_data inst) 0

and call_func (caller : frame) (callee : ffuncinst) (base : int) : unit =
  match callee with
  | FHost h ->
    let n = Array.length h.fh_params in
    let args = Array.init n (fun i -> read_slot caller h.fh_params.(i) (base + i)) in
    let results = h.fimpl args in
    if List.length results <> Array.length h.fh_results then
      raise (Trap "host function returned wrong arity");
    List.iteri (fun i v -> write_slot caller h.fh_results.(i) (base + i) v) results
  | FWasm ({ fbody; finst; _ } as w) ->
    let pt = fbody.cb_param_types in
    let np = Array.length pt in
    (* Reuse the function's resident frame unless it is already live
       further up the call chain (recursion / host reentry). Locals
       beyond the parameters must read as zero again. *)
    let pooled = not w.fbusy in
    let fr =
      if pooled then begin
        w.fbusy <- true;
        let f = w.fframe0 in
        let nl = fbody.cb_nloc in
        if nl > np then begin
          Array.fill f.xi np (nl - np) 0;
          Array.fill f.xl np (nl - np) 0L;
          Array.fill f.xf np (nl - np) 0.0
        end;
        f
      end
      else make_frame finst fbody
    in
    for i = 0 to np - 1 do
      match pt.(i) with
      | I32 -> fr.xi.(i) <- caller.xi.(base + i)
      | I64 -> fr.xl.(i) <- caller.xl.(base + i)
      | F32 | F64 -> fr.xf.(i) <- caller.xf.(base + i)
    done;
    (try exec fr fbody.cb_code
     with e ->
       if pooled then w.fbusy <- false;
       raise e);
    let rt = fbody.cb_result_types and rbase = fbody.cb_nloc in
    for i = 0 to Array.length rt - 1 do
      match rt.(i) with
      | I32 -> caller.xi.(base + i) <- fr.xi.(rbase + i)
      | I64 -> caller.xl.(base + i) <- fr.xl.(rbase + i)
      | F32 | F64 -> caller.xf.(base + i) <- fr.xf.(rbase + i)
    done;
    if pooled then w.fbusy <- false

(* ------------------------------------------------------------------ *)
(* Instantiation: link + initialise a compiled module. *)

exception Link_error = Instance.Link_error

type import_binding = string * string * fextern

let host ~module_ ~name ~params ~results impl : import_binding =
  ( module_,
    name,
    FFunc
      (FHost
         {
           fhtype = { params; results };
           fhname = name;
           fh_params = Array.of_list params;
           fh_results = Array.of_list results;
           fimpl = impl;
         }) )

let dummy_func =
  FHost
    {
      fhtype = { params = []; results = [] };
      fhname = "<uninitialized>";
      fh_params = [||];
      fh_results = [||];
      fimpl = (fun _ -> raise (Trap "uninitialized function"));
    }

(** [instantiate ~imports cm] links a compiled module against its
    imports and builds a runnable instance: memories and tables
    allocated, data and element segments applied. The start function,
    if any, is run by {!run_start} (call it explicitly, as the embedder
    controls timing measurements around it). *)
let instantiate ?(imports : import_binding list = []) (cm : cmodule) : finstance =
  let m = cm.cm_module in
  let import_tbl = Hashtbl.create 16 in
  List.iter (fun (mo, na, ext) -> Hashtbl.replace import_tbl (mo, na) ext) imports;
  let lookup (imp : import) =
    match Hashtbl.find_opt import_tbl (imp.imp_module, imp.imp_name) with
    | Some ext -> ext
    | None -> Instance.link_fail "unknown import %s.%s" imp.imp_module imp.imp_name
  in
  let imp_funcs, imp_mems, imp_globals, imp_tables =
    List.fold_left
      (fun (fs, ms, gs, ts) imp ->
        match (imp.idesc, lookup imp) with
        | ImportFunc tidx, FFunc f ->
          let expected = cm.cm_types.(tidx) in
          if not (functype_equal expected (type_of_ffuncinst f)) then
            Instance.link_fail "import %s.%s: signature mismatch" imp.imp_module imp.imp_name;
          (f :: fs, ms, gs, ts)
        | ImportMemory l, FMemory mem ->
          if Memory.size_pages mem < l.min then
            Instance.link_fail "import %s.%s: memory too small" imp.imp_module imp.imp_name;
          (fs, mem :: ms, gs, ts)
        | ImportGlobal g, FGlobal fg ->
          if not (valtype_equal g.content fg.fgty.content) then
            Instance.link_fail "import %s.%s: global type mismatch" imp.imp_module imp.imp_name;
          (fs, ms, fg :: gs, ts)
        | ImportTable _, FTable t -> (fs, ms, gs, t :: ts)
        | (ImportFunc _ | ImportMemory _ | ImportGlobal _ | ImportTable _), _ ->
          Instance.link_fail "import %s.%s: kind mismatch" imp.imp_module imp.imp_name)
      ([], [], [], []) m.imports
  in
  let imp_funcs = List.rev imp_funcs in
  let imp_mems = List.rev imp_mems in
  let imp_globals = List.rev imp_globals in
  let imp_tables = List.rev imp_tables in
  let n_imp = List.length imp_funcs in
  if n_imp <> cm.cm_n_imported then
    Instance.link_fail "import count mismatch (recompiled module?)";
  let eval_const body =
    match body with
    | [ Const v ] -> v
    | [ GlobalGet i ] when i < List.length imp_globals -> (List.nth imp_globals i).fgvalue
    | _ -> Instance.link_fail "unsupported constant expression"
  in
  let own_globals =
    List.map (fun (g : global) -> { fgty = g.gtype; fgvalue = eval_const g.ginit }) m.globals
  in
  let fglobals = Array.of_list (imp_globals @ own_globals) in
  let own_mems = List.map Memory.create m.memories in
  let fmemories = Array.of_list (imp_mems @ own_mems) in
  let own_tables =
    List.map (fun (l : limits) -> (Array.make l.min None : ffuncinst option array)) m.tables
  in
  let ftables = Array.of_list (imp_tables @ own_tables) in
  let ffuncs = Array.make (n_imp + Array.length cm.cm_bodies) dummy_func in
  List.iteri (fun i f -> ffuncs.(i) <- f) imp_funcs;
  let inst = { fmod = cm; ffuncs; fmemories; ftables; fglobals; fexports = [] } in
  Array.iteri
    (fun i body ->
      ffuncs.(n_imp + i) <-
        FWasm
          {
            fftype = cm.cm_func_types.(n_imp + i);
            fbody = body;
            finst = inst;
            fframe0 = make_frame inst body;
            fbusy = false;
          })
    cm.cm_bodies;
  (* Element segments. *)
  List.iter
    (fun e ->
      let offset =
        match eval_const e.eoffset with
        | VI32 v -> Int32.to_int v land 0xffffffff
        | VI64 _ | VF32 _ | VF64 _ -> Instance.link_fail "element offset must be i32"
      in
      let table = ftables.(e.etable) in
      if offset + List.length e.einit > Array.length table then
        Instance.link_fail "element segment out of bounds";
      List.iteri (fun i fidx -> table.(offset + i) <- Some ffuncs.(fidx)) e.einit)
    m.elems;
  (* Data segments. *)
  List.iter
    (fun d ->
      let offset =
        match eval_const d.doffset with
        | VI32 v -> Int32.to_int v land 0xffffffff
        | VI64 _ | VF32 _ | VF64 _ -> Instance.link_fail "data offset must be i32"
      in
      let mem = fmemories.(d.dmem) in
      if offset + String.length d.dinit > Memory.size_bytes mem then
        Instance.link_fail "data segment out of bounds";
      Memory.store_string mem offset d.dinit)
    m.datas;
  (* Exports. *)
  inst.fexports <-
    List.map
      (fun e ->
        let ext =
          match e.edesc with
          | ExportFunc i -> FFunc ffuncs.(i)
          | ExportMemory i -> FMemory fmemories.(i)
          | ExportGlobal i -> FGlobal fglobals.(i)
          | ExportTable i -> FTable ftables.(i)
        in
        (e.exp_name, ext))
      m.exports;
  inst

(* ------------------------------------------------------------------ *)
(* Invocation *)

(** Call a flattened or host function with boxed values. *)
let invoke_funcinst (fi : ffuncinst) (args : value list) : value list =
  let ft = type_of_ffuncinst fi in
  if List.length args <> List.length ft.params then raise (Trap "invoke: wrong argument count");
  List.iter2
    (fun v t ->
      if not (valtype_equal (type_of_value v) t) then
        raise (Trap "invoke: argument type mismatch"))
    args ft.params;
  match fi with
  | FHost h -> h.fimpl (Array.of_list args)
  | FWasm { fbody; finst; _ } ->
    let fr = make_frame finst fbody in
    List.iteri
      (fun i v ->
        match v with
        | VI32 x -> fr.xi.(i) <- Int32.to_int x
        | VI64 x -> fr.xl.(i) <- x
        | VF32 x | VF64 x -> fr.xf.(i) <- x)
      args;
    exec fr fbody.cb_code;
    List.mapi (fun i t -> read_slot fr t (fbody.cb_nloc + i)) ft.results

let export_func (inst : finstance) name =
  match List.assoc_opt name inst.fexports with
  | Some (FFunc f) -> Some f
  | Some (FMemory _ | FGlobal _ | FTable _) | None -> None

let export_memory (inst : finstance) name =
  match List.assoc_opt name inst.fexports with
  | Some (FMemory m) -> Some m
  | Some (FFunc _ | FGlobal _ | FTable _) | None -> None

(** Invoke an exported function by name. Raises [Not_found] if the
    export is missing or not a function. *)
let invoke (inst : finstance) name args =
  match export_func inst name with
  | Some f -> invoke_funcinst f args
  | None -> raise Not_found

(** Run the module's start function, if any. *)
let run_start (inst : finstance) =
  match inst.fmod.cm_module.start with
  | None -> ()
  | Some f -> ignore (invoke_funcinst inst.ffuncs.(f) [])

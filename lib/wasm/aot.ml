(** Ahead-of-time compilation of validated Wasm modules.

    This tier plays the role of WAMR's LLVM AOT mode in the paper: the
    bytecode is translated {e once}, before execution, into closures
    over typed register arrays — i32 values live in a native [int]
    array, floats in a flat [float array] — so the hot path runs with
    no decode/dispatch, no operand-stack allocation and no boxing of
    i32/f64 values. Static stack heights (known from validation) become
    register indices; branches become precomputed register moves plus a
    preallocated exception.

    Modules must be validated ({!Validate.validate}) before
    {!compile}: the compiler trusts the types. *)

open Types
open Ast
open Instance

(* Preallocated control-flow exceptions: raising them does not
   allocate, which matters on loop back-edges. *)
exception Br_exn of int
exception Ret_exn

let br_exn_cache = Array.init 64 (fun i -> Br_exn i)
let br_exn d = if d < 64 then br_exn_cache.(d) else Br_exn d

(* Native-int arithmetic on 32-bit values stored sign-extended. *)
let wrap32 x = (x lsl 31) asr 31
let u32 x = x land 0xffffffff

(* ------------------------------------------------------------------ *)
(* Runtime representation *)

type cglobal = { cgty : globaltype; mutable cgvalue : value }

type cfuncinst =
  | CWasm of cfunc
  | CHost of { chtype : functype; chname : string; impl : value array -> value list }

and cfunc = {
  cftype : functype;
  (* Frame sizes are patched once compilation of the body fixes the
     maximal static stack height. *)
  mutable n_iloc : int;
  mutable n_lloc : int;
  mutable n_floc : int;
  mutable n_ireg : int;
  mutable n_lreg : int;
  mutable n_freg : int;
  mutable body : rt -> unit;
  local_types : valtype array; (* params @ locals *)
}

and rinstance = {
  cfuncs : cfuncinst array;
  rmemories : Memory.t array;
  rtables : cfuncinst option array array;
  rglobals : cglobal array;
  rtypes : functype array;
  mutable rexports : (string * rextern) list;
}

and rextern =
  | RFunc of cfuncinst
  | RMemory of Memory.t
  | RGlobal of cglobal
  | RTable of cfuncinst option array

(* A call frame: typed register files for stack slots and locals. *)
and rt = {
  ri : int array; (* i32 stack slots, sign-extended native ints *)
  rl : int64 array;
  rf : float array; (* f32/f64 stack slots *)
  li : int array;
  ll : int64 array;
  lf : float array;
  ri_inst : rinstance;
}

let empty_int : int array = [||]
let empty_i64 : int64 array = [||]
let empty_float : float array = [||]

let make_rt inst (f : cfunc) =
  {
    ri = (if f.n_ireg = 0 then empty_int else Array.make f.n_ireg 0);
    rl = (if f.n_lreg = 0 then empty_i64 else Array.make f.n_lreg 0L);
    rf = (if f.n_freg = 0 then empty_float else Array.make f.n_freg 0.0);
    li = (if f.n_iloc = 0 then empty_int else Array.make f.n_iloc 0);
    ll = (if f.n_lloc = 0 then empty_i64 else Array.make f.n_lloc 0L);
    lf = (if f.n_floc = 0 then empty_float else Array.make f.n_floc 0.0);
    ri_inst = inst;
  }

(* ------------------------------------------------------------------ *)
(* Compile-time context *)

type cframe = {
  entry_height : int;
  label_types : valtype list; (* what a branch to this label carries *)
  end_types : valtype list;
}

type cctx = {
  types : functype array;
  func_types : functype array;
  globals_t : globaltype array;
  locals : valtype array;
  results : valtype list;
  mutable stack : valtype list; (* compile-time type stack, top first *)
  mutable height : int;
  mutable max_height : int;
  mutable frames : cframe list; (* innermost first *)
  fuel : bool; (* charge Instance.Fuel per loop iteration and function entry *)
}

let push_t ctx t =
  ctx.stack <- t :: ctx.stack;
  ctx.height <- ctx.height + 1;
  if ctx.height > ctx.max_height then ctx.max_height <- ctx.height

let pop_t ctx =
  match ctx.stack with
  | [] -> invalid_arg "Aot: compile-time stack underflow (module not validated?)"
  | t :: rest ->
    ctx.stack <- rest;
    ctx.height <- ctx.height - 1;
    t

let pop_n ctx n = List.init n (fun _ -> pop_t ctx) |> List.rev

(* A compiled opcode. *)
type code = rt -> unit

exception Dead_code of code
(* Raised during compilation when an instruction cannot fall through
   (br, return, unreachable, br_table): the remainder of the sequence
   is dead and must not be compiled. *)

let nothing : code = fun _ -> ()

let seq (a : code) (b : code) : code =
  if a == nothing then b else if b == nothing then a else fun r -> a r; b r

(* Straight-line sequences dispatch through a flat array rather than a
   nest of [seq] closures: one bounds-checked load per op. *)
let seq_all (ops : code list) : code =
  let ops = Array.of_list (List.filter (fun c -> c != nothing) ops) in
  match Array.length ops with
  | 0 -> nothing
  | 1 -> ops.(0)
  | 2 ->
    let a = ops.(0) and b = ops.(1) in
    fun r -> a r; b r
  | 3 ->
    let a = ops.(0) and b = ops.(1) and c = ops.(2) in
    fun r -> a r; b r; c r
  | n ->
    fun r ->
      for k = 0 to n - 1 do
        (Array.unsafe_get ops k) r
      done

(* Register moves used when branching: copy the [types] values sitting
   at [src] (their base height) down to [dst]. *)
let emit_moves types ~src ~dst : code =
  if src = dst || types = [] then nothing
  else
    seq_all
      (List.mapi
         (fun k t ->
           let s = src + k and d = dst + k in
           match t with
           | I32 -> fun r -> r.ri.(d) <- r.ri.(s)
           | I64 -> fun r -> r.rl.(d) <- r.rl.(s)
           | F32 | F64 -> fun r -> r.rf.(d) <- r.rf.(s))
         types)

(* Boxing boundaries (calls to host functions, invoke API). *)
let read_slot r t h =
  match t with
  | I32 -> VI32 (Int32.of_int r.ri.(h))
  | I64 -> VI64 r.rl.(h)
  | F32 -> VF32 r.rf.(h)
  | F64 -> VF64 r.rf.(h)

let write_slot r t h v =
  match (t, v) with
  | I32, VI32 x -> r.ri.(h) <- Int32.to_int x
  | I64, VI64 x -> r.rl.(h) <- x
  | F32, VF32 x -> r.rf.(h) <- x
  | F64, VF64 x -> r.rf.(h) <- x
  | (I32 | I64 | F32 | F64), _ -> raise (Trap "host function returned wrong type")

let value_of_global g = g.cgvalue

(* ------------------------------------------------------------------ *)
(* Memory helpers *)

let mem0 r = r.ri_inst.rmemories.(0)

let check_addr data addr width =
  if addr < 0 || addr + width > Bytes.length data then raise (Trap "out of bounds memory access")

(* ------------------------------------------------------------------ *)
(* Instruction compilation *)

let rec compile_instr (ctx : cctx) (get_cfunc : int -> cfuncinst) (i : instr) : code option =
  (* Returns [None] when the instruction diverts control
     unconditionally, in which case the rest of the sequence is dead. *)
  let h () = ctx.height in
  match i with
  | Nop -> Some nothing
  | Unreachable -> unconditional ctx (fun _ -> raise (Trap "unreachable executed"))
  | Drop ->
    ignore (pop_t ctx);
    Some nothing
  | Select ->
    ignore (pop_t ctx);
    let t = pop_t ctx in
    ignore (pop_t ctx);
    push_t ctx t;
    let d = h () - 1 in
    (* v1 at d (the result slot), v2 at d+1, condition at d+2. *)
    Some
      (match t with
      | I32 -> fun r -> if r.ri.(d + 2) = 0 then r.ri.(d) <- r.ri.(d + 1)
      | I64 -> fun r -> if r.ri.(d + 2) = 0 then r.rl.(d) <- r.rl.(d + 1)
      | F32 | F64 -> fun r -> if r.ri.(d + 2) = 0 then r.rf.(d) <- r.rf.(d + 1))
  | Const v ->
    push_t ctx (type_of_value v);
    let d = h () - 1 in
    Some
      (match v with
      | VI32 x ->
        let n = Int32.to_int x in
        fun r -> r.ri.(d) <- n
      | VI64 x -> fun r -> r.rl.(d) <- x
      | VF32 x | VF64 x -> fun r -> r.rf.(d) <- x)
  | LocalGet i ->
    let t = ctx.locals.(i) in
    push_t ctx t;
    let d = h () - 1 in
    Some
      (match t with
      | I32 -> fun r -> r.ri.(d) <- r.li.(i)
      | I64 -> fun r -> r.rl.(d) <- r.ll.(i)
      | F32 | F64 -> fun r -> r.rf.(d) <- r.lf.(i))
  | LocalSet i ->
    let t = pop_t ctx in
    let s = h () in
    Some
      (match t with
      | I32 -> fun r -> r.li.(i) <- r.ri.(s)
      | I64 -> fun r -> r.ll.(i) <- r.rl.(s)
      | F32 | F64 -> fun r -> r.lf.(i) <- r.rf.(s))
  | LocalTee i ->
    let t = List.hd ctx.stack in
    let s = h () - 1 in
    Some
      (match t with
      | I32 -> fun r -> r.li.(i) <- r.ri.(s)
      | I64 -> fun r -> r.ll.(i) <- r.rl.(s)
      | F32 | F64 -> fun r -> r.lf.(i) <- r.rf.(s))
  | GlobalGet i -> Some (compile_global_get ctx i)
  | GlobalSet i -> Some (compile_global_set ctx i)
  | ITestop ty ->
    ignore (pop_t ctx);
    push_t ctx I32;
    let s = h () - 1 in
    Some
      (match ty with
      | I32 -> fun r -> r.ri.(s) <- (if r.ri.(s) = 0 then 1 else 0)
      | I64 -> fun r -> r.ri.(s) <- (if Int64.equal r.rl.(s) 0L then 1 else 0)
      | F32 | F64 -> assert false)
  | IUnop (ty, op) ->
    ignore (pop_t ctx);
    push_t ctx ty;
    let s = h () - 1 in
    Some
      (match ty with
      | I32 ->
        (match op with
        | Clz -> fun r -> r.ri.(s) <- Int32.to_int (Numerics.I32_ops.clz (Int32.of_int r.ri.(s)))
        | Ctz -> fun r -> r.ri.(s) <- Int32.to_int (Numerics.I32_ops.ctz (Int32.of_int r.ri.(s)))
        | Popcnt ->
          fun r -> r.ri.(s) <- Int32.to_int (Numerics.I32_ops.popcnt (Int32.of_int r.ri.(s))))
      | I64 ->
        (match op with
        | Clz -> fun r -> r.rl.(s) <- Numerics.I64_ops.clz r.rl.(s)
        | Ctz -> fun r -> r.rl.(s) <- Numerics.I64_ops.ctz r.rl.(s)
        | Popcnt -> fun r -> r.rl.(s) <- Numerics.I64_ops.popcnt r.rl.(s))
      | F32 | F64 -> assert false)
  | IBinop (ty, op) ->
    ignore (pop_t ctx);
    ignore (pop_t ctx);
    push_t ctx ty;
    let d = h () - 1 in
    (* operands at d (lhs) and d+1 (rhs) *)
    Some (compile_ibinop ty op d)
  | IRelop (ty, op) ->
    ignore (pop_t ctx);
    ignore (pop_t ctx);
    push_t ctx I32;
    let d = h () - 1 in
    Some (compile_irelop ty op d)
  | FUnop (ty, op) ->
    ignore (pop_t ctx);
    push_t ctx ty;
    let s = h () - 1 in
    let f =
      match op with
      | Abs -> Float.abs
      | Neg -> fun x -> -.x
      | Ceil -> Float.ceil
      | Floor -> Float.floor
      | Trunc -> Float.trunc
      | Nearest -> Numerics.f_nearest
      | Sqrt -> Float.sqrt
    in
    Some
      (match ty with
      | F32 -> fun r -> r.rf.(s) <- Numerics.to_f32 (f r.rf.(s))
      | F64 -> fun r -> r.rf.(s) <- f r.rf.(s)
      | I32 | I64 -> assert false)
  | FBinop (ty, op) ->
    ignore (pop_t ctx);
    ignore (pop_t ctx);
    push_t ctx ty;
    let d = h () - 1 in
    Some (compile_fbinop ty op d)
  | FRelop (ty, op) ->
    ignore (pop_t ctx);
    ignore (pop_t ctx);
    push_t ctx I32;
    let d = h () - 1 in
    ignore ty;
    let cmp : float -> float -> bool =
      match op with
      | Feq -> ( = )
      | Fne -> ( <> )
      | Flt -> ( < )
      | Fgt -> ( > )
      | Fle -> ( <= )
      | Fge -> ( >= )
    in
    Some (fun r -> r.ri.(d) <- (if cmp r.rf.(d) r.rf.(d + 1) then 1 else 0))
  | Cvtop op ->
    ignore (pop_t ctx);
    let _, dst = Validate.cvt_types op in
    push_t ctx dst;
    let s = h () - 1 in
    Some (compile_cvtop op s)
  | Load (ty, pack, m) ->
    ignore (pop_t ctx);
    push_t ctx ty;
    let s = h () - 1 in
    let off = m.offset in
    Some (compile_load ty pack off s)
  | Store (ty, pack, m) ->
    ignore (pop_t ctx);
    ignore (pop_t ctx);
    let s = h () in
    (* addr at s, value at s+1 *)
    let off = m.offset in
    Some (compile_store ty pack off s)
  | MemorySize ->
    push_t ctx I32;
    let d = h () - 1 in
    Some (fun r -> r.ri.(d) <- Memory.size_pages (mem0 r))
  | MemoryGrow ->
    ignore (pop_t ctx);
    push_t ctx I32;
    let d = h () - 1 in
    Some (fun r -> r.ri.(d) <- Memory.grow (mem0 r) r.ri.(d))
  | Call f ->
    let ft = ctx.func_types.(f) in
    let n = List.length ft.params in
    let args_base = h () - n in
    ignore (pop_n ctx n);
    List.iter (push_t ctx) ft.results;
    Some (emit_call (get_cfunc f) ft ~args_base)
  | CallIndirect tidx ->
    let ft = ctx.types.(tidx) in
    ignore (pop_t ctx);
    let idx_slot = h () in
    let n = List.length ft.params in
    let args_base = h () - n in
    ignore (pop_n ctx n);
    List.iter (push_t ctx) ft.results;
    Some
      (fun r ->
        let table = r.ri_inst.rtables.(0) in
        let i = u32 r.ri.(idx_slot) in
        if i >= Array.length table then raise (Trap "undefined element");
        match table.(i) with
        | None -> raise (Trap "uninitialized element")
        | Some callee ->
          let actual =
            match callee with CWasm f -> f.cftype | CHost hf -> hf.chtype
          in
          if not (functype_equal actual ft) then raise (Trap "indirect call type mismatch");
          emit_call callee ft ~args_base r)
  | Block (bt, body) -> Some (compile_block ctx get_cfunc bt body)
  | Loop (bt, body) -> Some (compile_loop ctx get_cfunc bt body)
  | If (bt, then_, else_) -> Some (compile_if ctx get_cfunc bt then_ else_)
  | Br n ->
    let move, raise_code = branch_code ctx n in
    unconditional ctx (fun r -> move r; raise raise_code)
  | BrIf n ->
    ignore (pop_t ctx);
    let cond_slot = h () in
    let move, raise_code = branch_code ctx n in
    Some (fun r -> if r.ri.(cond_slot) <> 0 then begin move r; raise raise_code end)
  | BrTable (targets, default) ->
    ignore (pop_t ctx);
    let cond_slot = h () in
    let compiled =
      Array.of_list
        (List.map
           (fun tgt ->
             let move, exn = branch_code ctx tgt in
             (move, exn))
           targets)
    in
    let dmove, dexn = branch_code ctx default in
    unconditional ctx (fun r ->
        let idx = u32 r.ri.(cond_slot) in
        let move, exn = if idx < Array.length compiled then compiled.(idx) else (dmove, dexn) in
        move r;
        raise exn)
  | Return ->
    let arity = List.length ctx.results in
    let move = emit_moves ctx.results ~src:(h () - arity) ~dst:0 in
    unconditional ctx (fun r -> move r; raise Ret_exn)

and unconditional _ctx (c : code) : code option =
  (* The instruction never falls through; the caller must stop
     compiling the remainder of the sequence (it is dead code). *)
  raise (Dead_code c)

and compile_global_get ctx i : code =
  let t = ctx.globals_t.(i).content in
  push_t ctx t;
  let d = ctx.height - 1 in
  (match t with
  | I32 ->
    fun r ->
      (match r.ri_inst.rglobals.(i).cgvalue with
      | VI32 x -> r.ri.(d) <- Int32.to_int x
      | VI64 _ | VF32 _ | VF64 _ -> raise (Trap "global type confusion"))
  | I64 ->
    fun r ->
      (match r.ri_inst.rglobals.(i).cgvalue with
      | VI64 x -> r.rl.(d) <- x
      | VI32 _ | VF32 _ | VF64 _ -> raise (Trap "global type confusion"))
  | F32 | F64 ->
    fun r ->
      (match r.ri_inst.rglobals.(i).cgvalue with
      | VF32 x | VF64 x -> r.rf.(d) <- x
      | VI32 _ | VI64 _ -> raise (Trap "global type confusion")))

and compile_global_set ctx i : code =
  let t = pop_t ctx in
  let s = ctx.height in
  match t with
  | I32 -> fun r -> r.ri_inst.rglobals.(i).cgvalue <- VI32 (Int32.of_int r.ri.(s))
  | I64 -> fun r -> r.ri_inst.rglobals.(i).cgvalue <- VI64 r.rl.(s)
  | F32 -> fun r -> r.ri_inst.rglobals.(i).cgvalue <- VF32 r.rf.(s)
  | F64 -> fun r -> r.ri_inst.rglobals.(i).cgvalue <- VF64 r.rf.(s)

and compile_ibinop ty op d : code =
  match ty with
  | I32 ->
    (match op with
    | Add -> fun r -> r.ri.(d) <- wrap32 (r.ri.(d) + r.ri.(d + 1))
    | Sub -> fun r -> r.ri.(d) <- wrap32 (r.ri.(d) - r.ri.(d + 1))
    | Mul -> fun r -> r.ri.(d) <- wrap32 (r.ri.(d) * r.ri.(d + 1))
    | DivS ->
      fun r ->
        let a = r.ri.(d) and b = r.ri.(d + 1) in
        if b = 0 then raise (Trap "integer divide by zero")
        else if a = -0x80000000 && b = -1 then raise (Trap "integer overflow")
        else r.ri.(d) <- a / b
    | DivU ->
      fun r ->
        let b = u32 r.ri.(d + 1) in
        if b = 0 then raise (Trap "integer divide by zero")
        else r.ri.(d) <- wrap32 (u32 r.ri.(d) / b)
    | RemS ->
      fun r ->
        let a = r.ri.(d) and b = r.ri.(d + 1) in
        if b = 0 then raise (Trap "integer divide by zero")
        else if a = -0x80000000 && b = -1 then r.ri.(d) <- 0
        else r.ri.(d) <- a mod b
    | RemU ->
      fun r ->
        let b = u32 r.ri.(d + 1) in
        if b = 0 then raise (Trap "integer divide by zero")
        else r.ri.(d) <- wrap32 (u32 r.ri.(d) mod b)
    | And -> fun r -> r.ri.(d) <- r.ri.(d) land r.ri.(d + 1)
    | Or -> fun r -> r.ri.(d) <- r.ri.(d) lor r.ri.(d + 1)
    | Xor -> fun r -> r.ri.(d) <- r.ri.(d) lxor r.ri.(d + 1)
    | Shl -> fun r -> r.ri.(d) <- wrap32 (r.ri.(d) lsl (r.ri.(d + 1) land 31))
    | ShrS -> fun r -> r.ri.(d) <- r.ri.(d) asr (r.ri.(d + 1) land 31)
    | ShrU -> fun r -> r.ri.(d) <- wrap32 (u32 r.ri.(d) lsr (r.ri.(d + 1) land 31))
    | Rotl ->
      fun r ->
        let n = r.ri.(d + 1) land 31 in
        let x = u32 r.ri.(d) in
        r.ri.(d) <- (if n = 0 then wrap32 x else wrap32 ((x lsl n) lor (x lsr (32 - n))))
    | Rotr ->
      fun r ->
        let n = r.ri.(d + 1) land 31 in
        let x = u32 r.ri.(d) in
        r.ri.(d) <- (if n = 0 then wrap32 x else wrap32 ((x lsr n) lor (x lsl (32 - n)))))
  | I64 ->
    let open Numerics.I64_ops in
    (match op with
    | Add -> fun r -> r.rl.(d) <- Int64.add r.rl.(d) r.rl.(d + 1)
    | Sub -> fun r -> r.rl.(d) <- Int64.sub r.rl.(d) r.rl.(d + 1)
    | Mul -> fun r -> r.rl.(d) <- Int64.mul r.rl.(d) r.rl.(d + 1)
    | DivS -> fun r -> r.rl.(d) <- div_s r.rl.(d) r.rl.(d + 1)
    | DivU -> fun r -> r.rl.(d) <- div_u r.rl.(d) r.rl.(d + 1)
    | RemS -> fun r -> r.rl.(d) <- rem_s r.rl.(d) r.rl.(d + 1)
    | RemU -> fun r -> r.rl.(d) <- rem_u r.rl.(d) r.rl.(d + 1)
    | And -> fun r -> r.rl.(d) <- Int64.logand r.rl.(d) r.rl.(d + 1)
    | Or -> fun r -> r.rl.(d) <- Int64.logor r.rl.(d) r.rl.(d + 1)
    | Xor -> fun r -> r.rl.(d) <- Int64.logxor r.rl.(d) r.rl.(d + 1)
    | Shl -> fun r -> r.rl.(d) <- shl r.rl.(d) r.rl.(d + 1)
    | ShrS -> fun r -> r.rl.(d) <- shr_s r.rl.(d) r.rl.(d + 1)
    | ShrU -> fun r -> r.rl.(d) <- shr_u r.rl.(d) r.rl.(d + 1)
    | Rotl -> fun r -> r.rl.(d) <- rotl r.rl.(d) r.rl.(d + 1)
    | Rotr -> fun r -> r.rl.(d) <- rotr r.rl.(d) r.rl.(d + 1))
  | F32 | F64 -> assert false

and compile_irelop ty op d : code =
  match ty with
  | I32 ->
    (match op with
    | Eq -> fun r -> r.ri.(d) <- (if r.ri.(d) = r.ri.(d + 1) then 1 else 0)
    | Ne -> fun r -> r.ri.(d) <- (if r.ri.(d) <> r.ri.(d + 1) then 1 else 0)
    | LtS -> fun r -> r.ri.(d) <- (if r.ri.(d) < r.ri.(d + 1) then 1 else 0)
    | LtU -> fun r -> r.ri.(d) <- (if u32 r.ri.(d) < u32 r.ri.(d + 1) then 1 else 0)
    | GtS -> fun r -> r.ri.(d) <- (if r.ri.(d) > r.ri.(d + 1) then 1 else 0)
    | GtU -> fun r -> r.ri.(d) <- (if u32 r.ri.(d) > u32 r.ri.(d + 1) then 1 else 0)
    | LeS -> fun r -> r.ri.(d) <- (if r.ri.(d) <= r.ri.(d + 1) then 1 else 0)
    | LeU -> fun r -> r.ri.(d) <- (if u32 r.ri.(d) <= u32 r.ri.(d + 1) then 1 else 0)
    | GeS -> fun r -> r.ri.(d) <- (if r.ri.(d) >= r.ri.(d + 1) then 1 else 0)
    | GeU -> fun r -> r.ri.(d) <- (if u32 r.ri.(d) >= u32 r.ri.(d + 1) then 1 else 0))
  | I64 ->
    let open Numerics.I64_ops in
    (match op with
    | Eq -> fun r -> r.ri.(d) <- (if Int64.equal r.rl.(d) r.rl.(d + 1) then 1 else 0)
    | Ne -> fun r -> r.ri.(d) <- (if Int64.equal r.rl.(d) r.rl.(d + 1) then 0 else 1)
    | LtS -> fun r -> r.ri.(d) <- (if Int64.compare r.rl.(d) r.rl.(d + 1) < 0 then 1 else 0)
    | LtU -> fun r -> r.ri.(d) <- (if lt_u r.rl.(d) r.rl.(d + 1) then 1 else 0)
    | GtS -> fun r -> r.ri.(d) <- (if Int64.compare r.rl.(d) r.rl.(d + 1) > 0 then 1 else 0)
    | GtU -> fun r -> r.ri.(d) <- (if gt_u r.rl.(d) r.rl.(d + 1) then 1 else 0)
    | LeS -> fun r -> r.ri.(d) <- (if Int64.compare r.rl.(d) r.rl.(d + 1) <= 0 then 1 else 0)
    | LeU -> fun r -> r.ri.(d) <- (if le_u r.rl.(d) r.rl.(d + 1) then 1 else 0)
    | GeS -> fun r -> r.ri.(d) <- (if Int64.compare r.rl.(d) r.rl.(d + 1) >= 0 then 1 else 0)
    | GeU -> fun r -> r.ri.(d) <- (if ge_u r.rl.(d) r.rl.(d + 1) then 1 else 0))
  | F32 | F64 -> assert false

and compile_fbinop ty op d : code =
  let f32res = match ty with F32 -> true | F64 -> false | I32 | I64 -> assert false in
  let apply : float -> float -> float =
    match op with
    | Fadd -> ( +. )
    | Fsub -> ( -. )
    | Fmul -> ( *. )
    | Fdiv -> ( /. )
    | Fmin -> Numerics.f_min
    | Fmax -> Numerics.f_max
    | Copysign -> Float.copy_sign
  in
  if f32res then fun r -> r.rf.(d) <- Numerics.to_f32 (apply r.rf.(d) r.rf.(d + 1))
  else
    match op with
    | Fadd -> fun r -> r.rf.(d) <- r.rf.(d) +. r.rf.(d + 1)
    | Fsub -> fun r -> r.rf.(d) <- r.rf.(d) -. r.rf.(d + 1)
    | Fmul -> fun r -> r.rf.(d) <- r.rf.(d) *. r.rf.(d + 1)
    | Fdiv -> fun r -> r.rf.(d) <- r.rf.(d) /. r.rf.(d + 1)
    | Fmin | Fmax | Copysign -> fun r -> r.rf.(d) <- apply r.rf.(d) r.rf.(d + 1)

and compile_cvtop op s : code =
  let open Numerics in
  match op with
  | I32WrapI64 -> fun r -> r.ri.(s) <- wrap32 (Int64.to_int r.rl.(s))
  | I32TruncF32S | I32TruncF64S -> fun r -> r.ri.(s) <- Int32.to_int (trunc_to_i32_s r.rf.(s))
  | I32TruncF32U | I32TruncF64U -> fun r -> r.ri.(s) <- Int32.to_int (trunc_to_i32_u r.rf.(s))
  | I64ExtendI32S -> fun r -> r.rl.(s) <- Int64.of_int r.ri.(s)
  | I64ExtendI32U -> fun r -> r.rl.(s) <- Int64.of_int (u32 r.ri.(s))
  | I64TruncF32S | I64TruncF64S -> fun r -> r.rl.(s) <- trunc_to_i64_s r.rf.(s)
  | I64TruncF32U | I64TruncF64U -> fun r -> r.rl.(s) <- trunc_to_i64_u r.rf.(s)
  | F32ConvertI32S -> fun r -> r.rf.(s) <- to_f32 (float_of_int r.ri.(s))
  | F32ConvertI32U -> fun r -> r.rf.(s) <- to_f32 (float_of_int (u32 r.ri.(s)))
  | F32ConvertI64S -> fun r -> r.rf.(s) <- to_f32 (Int64.to_float r.rl.(s))
  | F32ConvertI64U -> fun r -> r.rf.(s) <- to_f32 (u64_to_float r.rl.(s))
  | F32DemoteF64 -> fun r -> r.rf.(s) <- to_f32 r.rf.(s)
  | F64ConvertI32S -> fun r -> r.rf.(s) <- float_of_int r.ri.(s)
  | F64ConvertI32U -> fun r -> r.rf.(s) <- float_of_int (u32 r.ri.(s))
  | F64ConvertI64S -> fun r -> r.rf.(s) <- Int64.to_float r.rl.(s)
  | F64ConvertI64U -> fun r -> r.rf.(s) <- u64_to_float r.rl.(s)
  | F64PromoteF32 -> fun r -> r.rf.(s) <- r.rf.(s)
  | I32ReinterpretF32 -> fun r -> r.ri.(s) <- Int32.to_int (Int32.bits_of_float r.rf.(s))
  | I64ReinterpretF64 -> fun r -> r.rl.(s) <- Int64.bits_of_float r.rf.(s)
  | F32ReinterpretI32 -> fun r -> r.rf.(s) <- Int32.float_of_bits (Int32.of_int r.ri.(s))
  | F64ReinterpretI64 -> fun r -> r.rf.(s) <- Int64.float_of_bits r.rl.(s)

and compile_load ty pack off s : code =
  match (ty, pack) with
  | I32, None ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 4;
      r.ri.(s) <- Int32.to_int (Bytes.get_int32_le m.Memory.data a)
  | I64, None ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 8;
      r.rl.(s) <- Bytes.get_int64_le m.Memory.data a
  | F32, None ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 4;
      r.rf.(s) <- Int32.float_of_bits (Bytes.get_int32_le m.Memory.data a)
  | F64, None ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 8;
      r.rf.(s) <- Int64.float_of_bits (Bytes.get_int64_le m.Memory.data a)
  | I32, Some (P8, SX) ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 1;
      r.ri.(s) <- Bytes.get_int8 m.Memory.data a
  | I32, Some (P8, ZX) ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 1;
      r.ri.(s) <- Bytes.get_uint8 m.Memory.data a
  | I32, Some (P16, SX) ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 2;
      r.ri.(s) <- Bytes.get_int16_le m.Memory.data a
  | I32, Some (P16, ZX) ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 2;
      r.ri.(s) <- Bytes.get_uint16_le m.Memory.data a
  | I64, Some (P8, SX) ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 1;
      r.rl.(s) <- Int64.of_int (Bytes.get_int8 m.Memory.data a)
  | I64, Some (P8, ZX) ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 1;
      r.rl.(s) <- Int64.of_int (Bytes.get_uint8 m.Memory.data a)
  | I64, Some (P16, SX) ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 2;
      r.rl.(s) <- Int64.of_int (Bytes.get_int16_le m.Memory.data a)
  | I64, Some (P16, ZX) ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 2;
      r.rl.(s) <- Int64.of_int (Bytes.get_uint16_le m.Memory.data a)
  | I64, Some (P32, SX) ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 4;
      r.rl.(s) <- Int64.of_int32 (Bytes.get_int32_le m.Memory.data a)
  | I64, Some (P32, ZX) ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 4;
      r.rl.(s) <- Int64.logand (Int64.of_int32 (Bytes.get_int32_le m.Memory.data a)) 0xffffffffL
  | (I32 | F32 | F64), Some (P32, _) | (F32 | F64), Some ((P8 | P16), _) ->
    invalid_arg "Aot: invalid load"

and compile_store ty pack off s : code =
  (* address at slot s, value at slot s+1 *)
  match (ty, pack) with
  | I32, None ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 4;
      Bytes.set_int32_le m.Memory.data a (Int32.of_int r.ri.(s + 1))
  | I64, None ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 8;
      Bytes.set_int64_le m.Memory.data a r.rl.(s + 1)
  | F32, None ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 4;
      Bytes.set_int32_le m.Memory.data a (Int32.bits_of_float r.rf.(s + 1))
  | F64, None ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 8;
      Bytes.set_int64_le m.Memory.data a (Int64.bits_of_float r.rf.(s + 1))
  | I32, Some P8 ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 1;
      Bytes.set_uint8 m.Memory.data a (r.ri.(s + 1) land 0xff)
  | I32, Some P16 ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 2;
      Bytes.set_uint16_le m.Memory.data a (r.ri.(s + 1) land 0xffff)
  | I64, Some P8 ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 1;
      Bytes.set_uint8 m.Memory.data a (Int64.to_int r.rl.(s + 1) land 0xff)
  | I64, Some P16 ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 2;
      Bytes.set_uint16_le m.Memory.data a (Int64.to_int r.rl.(s + 1) land 0xffff)
  | I64, Some P32 ->
    fun r ->
      let m = mem0 r in
      let a = u32 r.ri.(s) + off in
      check_addr m.Memory.data a 4;
      Bytes.set_int32_le m.Memory.data a (Int64.to_int32 r.rl.(s + 1))
  | (I32 | F32 | F64), Some P32 | (F32 | F64), Some (P8 | P16) -> invalid_arg "Aot: invalid store"

and emit_call (callee : cfuncinst) (ft : functype) ~args_base : code =
  let n = List.length ft.params in
  match callee with
  | CHost { impl; chtype; _ } ->
    let param_types = Array.of_list chtype.params in
    let result_types = chtype.results in
    fun r ->
      let args = Array.init n (fun i -> read_slot r param_types.(i) (args_base + i)) in
      let results = impl args in
      if List.length results <> List.length result_types then
        raise (Trap "host function returned wrong arity");
      List.iteri (fun i (t, v) -> write_slot r t (args_base + i) v)
        (List.combine result_types results)
  | CWasm f ->
    let param_types = Array.of_list ft.params in
    let result_types = Array.of_list ft.results in
    fun r ->
      let callee_rt = make_rt r.ri_inst f in
      for i = 0 to n - 1 do
        match param_types.(i) with
        | I32 -> callee_rt.li.(i) <- r.ri.(args_base + i)
        | I64 -> callee_rt.ll.(i) <- r.rl.(args_base + i)
        | F32 | F64 -> callee_rt.lf.(i) <- r.rf.(args_base + i)
      done;
      (try f.body callee_rt with Ret_exn -> ());
      for i = 0 to Array.length result_types - 1 do
        match result_types.(i) with
        | I32 -> r.ri.(args_base + i) <- callee_rt.ri.(i)
        | I64 -> r.rl.(args_base + i) <- callee_rt.rl.(i)
        | F32 | F64 -> r.rf.(args_base + i) <- callee_rt.rf.(i)
      done

and branch_code ctx n : code * exn =
  let frame = List.nth ctx.frames n in
  let arity = List.length frame.label_types in
  let move =
    emit_moves frame.label_types ~src:(ctx.height - arity) ~dst:frame.entry_height
  in
  (move, br_exn n)

and compile_block ctx get_cfunc bt body : code =
  let ts = match bt with BlockEmpty -> [] | BlockVal t -> [ t ] in
  let entry_height = ctx.height in
  ctx.frames <- { entry_height; label_types = ts; end_types = ts } :: ctx.frames;
  let body_code = compile_seq ctx get_cfunc body in
  ctx.frames <- List.tl ctx.frames;
  (* Whatever path was taken, the stack now holds [ts] at entry_height. *)
  ctx.stack <- List.rev_append (List.rev ts) (drop_to ctx entry_height);
  ctx.height <- entry_height + List.length ts;
  fun r ->
    (try body_code r with
    | Br_exn 0 -> ()
    | Br_exn n -> raise (br_exn (n - 1)))

and compile_loop ctx get_cfunc bt body : code =
  let ts = match bt with BlockEmpty -> [] | BlockVal t -> [ t ] in
  let entry_height = ctx.height in
  ctx.frames <- { entry_height; label_types = []; end_types = ts } :: ctx.frames;
  (* Back-edge peephole: structured compilers (and MiniC) end every
     loop body with an unconditional [br 0]. Compiling that back edge
     as a plain recursive call instead of a raised exception removes an
     exception per iteration from every hot loop. *)
  let explicit_backedge =
    match List.rev body with Br 0 :: _ -> true | _ -> false
  in
  let body = if explicit_backedge then List.rev (List.tl (List.rev body)) else body in
  let body_code = compile_seq ctx get_cfunc body in
  ctx.frames <- List.tl ctx.frames;
  ctx.stack <- List.rev_append (List.rev ts) (drop_to ctx entry_height);
  ctx.height <- entry_height + List.length ts;
  (* Under fuel, charge at the top of [iterate] in both shapes: once on
     entry plus once per back edge — the same points as the other
     tiers, so a given budget exhausts tier-identically. *)
  if explicit_backedge then
    if ctx.fuel then
      fun r ->
        let rec iterate () =
          Instance.Fuel.consume ();
          (try body_code r with Br_exn 0 -> ());
          iterate ()
        in
        (try iterate () with
        | Br_exn 0 -> ()
        | Br_exn n -> raise (br_exn (n - 1)))
    else
      fun r ->
        let rec iterate () =
          (try body_code r with Br_exn 0 -> ());
          iterate ()
        in
        (try iterate () with
        | Br_exn 0 -> ()
        | Br_exn n -> raise (br_exn (n - 1)))
  else if ctx.fuel then
    fun r ->
      let rec iterate () =
        Instance.Fuel.consume ();
        match body_code r with
        | () -> ()
        | exception Br_exn 0 -> iterate ()
        | exception Br_exn n -> raise (br_exn (n - 1))
      in
      iterate ()
  else
    fun r ->
      let rec iterate () =
        match body_code r with
        | () -> ()
        | exception Br_exn 0 -> iterate ()
        | exception Br_exn n -> raise (br_exn (n - 1))
      in
      iterate ()

and compile_if ctx get_cfunc bt then_ else_ : code =
  ignore (pop_t ctx);
  let cond_slot = ctx.height in
  let ts = match bt with BlockEmpty -> [] | BlockVal t -> [ t ] in
  let entry_height = ctx.height in
  let saved_stack = ctx.stack in
  ctx.frames <- { entry_height; label_types = ts; end_types = ts } :: ctx.frames;
  let then_code = compile_seq ctx get_cfunc then_ in
  (* Reset for the else arm. *)
  ctx.stack <- saved_stack;
  ctx.height <- entry_height;
  let else_code = compile_seq ctx get_cfunc else_ in
  ctx.frames <- List.tl ctx.frames;
  ctx.stack <- List.rev_append (List.rev ts) (drop_to ctx entry_height);
  ctx.height <- entry_height + List.length ts;
  fun r ->
    (try if r.ri.(cond_slot) <> 0 then then_code r else else_code r with
    | Br_exn 0 -> ()
    | Br_exn n -> raise (br_exn (n - 1)))

and drop_to ctx target_height =
  (* The compile-time stack below [target_height], as a list. *)
  let rec go stack h = if h > target_height then go (List.tl stack) (h - 1) else stack in
  go ctx.stack ctx.height

(* Peephole fusion: collapse the instruction sequences a structured
   compiler emits for array addressing and operand loading into single
   closures. Every fusion reproduces exactly the stack effect and the
   32-bit wrap-around semantics of the unfused sequence; the
   differential tests (interp vs AOT on every workload) guard this. *)
and try_fuse ctx (instrs : instr list) : (code * instr list) option =
  let local_is ty idx = idx < Array.length ctx.locals && valtype_equal ctx.locals.(idx) ty in
  let pure_i32 = function
    | Add | Sub | Mul | And | Or | Xor -> true
    | DivS | DivU | RemS | RemU | Shl | ShrS | ShrU | Rotl | Rotr -> false
  in
  let iop = function
    | Add -> ( + )
    | Sub -> ( - )
    | Mul -> ( * )
    | And -> ( land )
    | Or -> ( lor )
    | Xor -> ( lxor )
    | DivS | DivU | RemS | RemU | Shl | ShrS | ShrU | Rotl | Rotr -> assert false
  in
  let fop = function
    | Fadd -> ( +. )
    | Fsub -> ( -. )
    | Fmul -> ( *. )
    | Fdiv -> ( /. )
    | Fmin -> Numerics.f_min
    | Fmax -> Numerics.f_max
    | Copysign -> Float.copy_sign
  in
  match instrs with
  (* 2-D array address: base + ((r*cols + c) * elem). *)
  | Const (VI32 b) :: LocalGet r :: Const (VI32 cols) :: IBinop (I32, Mul) :: LocalGet c
    :: IBinop (I32, Add) :: Const (VI32 elem) :: IBinop (I32, Mul) :: IBinop (I32, Add)
    :: rest
    when local_is I32 r && local_is I32 c ->
    push_t ctx I32;
    let d = ctx.height - 1 in
    let b = Int32.to_int b and cols = Int32.to_int cols and elem = Int32.to_int elem in
    Some
      ( (fun rt ->
          let idx = wrap32 (wrap32 (rt.li.(r) * cols) + rt.li.(c)) in
          rt.ri.(d) <- wrap32 (b + wrap32 (idx * elem))),
        rest )
  (* 1-D array address: base + (k * elem). *)
  | Const (VI32 b) :: LocalGet k :: Const (VI32 elem) :: IBinop (I32, Mul)
    :: IBinop (I32, Add) :: rest
    when local_is I32 k ->
    push_t ctx I32;
    let d = ctx.height - 1 in
    let b = Int32.to_int b and elem = Int32.to_int elem in
    Some ((fun rt -> rt.ri.(d) <- wrap32 (b + wrap32 (rt.li.(k) * elem))), rest)
  (* local op local (i32). *)
  | LocalGet a :: LocalGet b :: IBinop (I32, op) :: rest
    when local_is I32 a && local_is I32 b && pure_i32 op ->
    push_t ctx I32;
    let d = ctx.height - 1 in
    let f = iop op in
    Some ((fun rt -> rt.ri.(d) <- wrap32 (f rt.li.(a) rt.li.(b))), rest)
  (* local op const (i32). *)
  | LocalGet a :: Const (VI32 k) :: IBinop (I32, op) :: rest
    when local_is I32 a && pure_i32 op ->
    push_t ctx I32;
    let d = ctx.height - 1 in
    let f = iop op and k = Int32.to_int k in
    Some ((fun rt -> rt.ri.(d) <- wrap32 (f rt.li.(a) k)), rest)
  (* top op const (i32). *)
  | Const (VI32 k) :: IBinop (I32, op) :: rest when ctx.height > 0 && pure_i32 op ->
    (match ctx.stack with
    | I32 :: _ ->
      let d = ctx.height - 1 in
      let f = iop op and k = Int32.to_int k in
      Some ((fun rt -> rt.ri.(d) <- wrap32 (f rt.ri.(d) k)), rest)
    | _ -> None)
  (* top op local (i32). *)
  | LocalGet a :: IBinop (I32, op) :: rest
    when local_is I32 a && ctx.height > 0 && pure_i32 op ->
    (match ctx.stack with
    | I32 :: _ ->
      let d = ctx.height - 1 in
      let f = iop op in
      Some ((fun rt -> rt.ri.(d) <- wrap32 (f rt.ri.(d) rt.li.(a))), rest)
    | _ -> None)
  (* f64: local op local / local op const / top op local / top op const. *)
  | LocalGet a :: LocalGet b :: FBinop (F64, op) :: rest
    when local_is F64 a && local_is F64 b ->
    push_t ctx F64;
    let d = ctx.height - 1 in
    let f = fop op in
    Some ((fun rt -> rt.rf.(d) <- f rt.lf.(a) rt.lf.(b)), rest)
  | LocalGet a :: Const (VF64 k) :: FBinop (F64, op) :: rest when local_is F64 a ->
    push_t ctx F64;
    let d = ctx.height - 1 in
    let f = fop op in
    Some ((fun rt -> rt.rf.(d) <- f rt.lf.(a) k), rest)
  | LocalGet a :: FBinop (F64, op) :: rest when local_is F64 a && ctx.height > 0 ->
    (match ctx.stack with
    | F64 :: _ ->
      let d = ctx.height - 1 in
      let f = fop op in
      Some ((fun rt -> rt.rf.(d) <- f rt.rf.(d) rt.lf.(a)), rest)
    | _ -> None)
  | Const (VF64 k) :: FBinop (F64, op) :: rest when ctx.height > 0 ->
    (match ctx.stack with
    | F64 :: _ ->
      let d = ctx.height - 1 in
      let f = fop op in
      Some ((fun rt -> rt.rf.(d) <- f rt.rf.(d) k), rest)
    | _ -> None)
  (* to_f64 of an i32 local. *)
  | LocalGet a :: Cvtop F64ConvertI32S :: rest when local_is I32 a ->
    push_t ctx F64;
    let d = ctx.height - 1 in
    Some ((fun rt -> rt.rf.(d) <- float_of_int rt.li.(a)), rest)
  (* f64 load at a fused or computed address followed by the value op
     is left to the generic path. *)
  | _ -> None

and compile_seq ctx get_cfunc (body : instr list) : code =
  let rec go acc instrs =
    match try_fuse ctx instrs with
    | Some (c, rest) -> go (c :: acc) rest
    | None -> (
      match instrs with
      | [] -> seq_all (List.rev acc)
      | i :: rest -> (
        match compile_instr ctx get_cfunc i with
        | Some c -> go (c :: acc) rest
        | None -> seq_all (List.rev acc)
        | exception Dead_code c ->
          (* The instruction diverts control unconditionally; anything
             after it in this sequence is dead and skipped. *)
          seq_all (List.rev (c :: acc))))
  in
  go [] body


(* ------------------------------------------------------------------ *)
(* Instantiation: compile + link + initialise in one pass. *)

exception Link_error = Instance.Link_error

type import_binding = string * string * rextern

let host ~module_ ~name ~params ~results impl : import_binding =
  (module_, name, RFunc (CHost { chtype = { params; results }; chname = name; impl }))

let type_of_cfuncinst = function CWasm f -> f.cftype | CHost h -> h.chtype

(** [instantiate ~imports m] compiles a {e validated} module to closures
    and builds a runnable instance: memories and tables allocated, data
    and element segments applied. The start function, if any, is run by
    {!run_start} (call it explicitly, as the embedder controls timing
    measurements around it). *)
let instantiate ?(fuel = false) ?(imports : import_binding list = []) (m : module_) : rinstance =
  let import_tbl = Hashtbl.create 16 in
  List.iter (fun (mo, na, ext) -> Hashtbl.replace import_tbl (mo, na) ext) imports;
  let lookup (imp : import) =
    match Hashtbl.find_opt import_tbl (imp.imp_module, imp.imp_name) with
    | Some ext -> ext
    | None -> Instance.link_fail "unknown import %s.%s" imp.imp_module imp.imp_name
  in
  let type_arr = Array.of_list m.types in
  (* Imported entities. *)
  let imp_funcs, imp_mems, imp_globals, imp_tables =
    List.fold_left
      (fun (fs, ms, gs, ts) imp ->
        match (imp.idesc, lookup imp) with
        | ImportFunc tidx, RFunc f ->
          let expected = type_arr.(tidx) in
          if not (functype_equal expected (type_of_cfuncinst f)) then
            Instance.link_fail "import %s.%s: signature mismatch" imp.imp_module imp.imp_name;
          (f :: fs, ms, gs, ts)
        | ImportMemory l, RMemory mem ->
          if Memory.size_pages mem < l.min then
            Instance.link_fail "import %s.%s: memory too small" imp.imp_module imp.imp_name;
          (fs, mem :: ms, gs, ts)
        | ImportGlobal g, RGlobal cg ->
          if not (valtype_equal g.content cg.cgty.content) then
            Instance.link_fail "import %s.%s: global type mismatch" imp.imp_module imp.imp_name;
          (fs, ms, cg :: gs, ts)
        | ImportTable _, RTable t -> (fs, ms, gs, t :: ts)
        | (ImportFunc _ | ImportMemory _ | ImportGlobal _ | ImportTable _), _ ->
          Instance.link_fail "import %s.%s: kind mismatch" imp.imp_module imp.imp_name)
      ([], [], [], []) m.imports
  in
  let imp_funcs = List.rev imp_funcs in
  let imp_mems = List.rev imp_mems in
  let imp_globals = List.rev imp_globals in
  let imp_tables = List.rev imp_tables in
  (* Own function shells (bodies compiled below, so calls can capture
     the shells directly, including mutually recursive ones). *)
  let own_cfuncs =
    List.map
      (fun (f : func) ->
        let ft = type_arr.(f.ftype) in
        let local_types = Array.of_list (ft.params @ f.locals) in
        let n_locals = Array.length local_types in
        ({
           cftype = ft;
           n_iloc = n_locals;
           n_lloc = n_locals;
           n_floc = n_locals;
           n_ireg = 0;
           n_lreg = 0;
           n_freg = 0;
           body = (fun _ -> ());
           local_types;
         }
          : cfunc))
      m.funcs
  in
  let cfuncs = Array.of_list (imp_funcs @ List.map (fun f -> CWasm f) own_cfuncs) in
  let func_types = Array.map type_of_cfuncinst cfuncs in
  let globals_t =
    Array.of_list
      (List.map (fun g -> g.cgty) imp_globals @ List.map (fun g -> g.gtype) m.globals)
  in
  (* Globals. *)
  let eval_const imported body =
    match body with
    | [ Const v ] -> v
    | [ GlobalGet i ] when i < List.length imported -> (List.nth imported i).cgvalue
    | _ -> Instance.link_fail "unsupported constant expression"
  in
  let own_globals =
    List.map (fun g -> { cgty = g.gtype; cgvalue = eval_const imp_globals g.ginit }) m.globals
  in
  let rglobals = Array.of_list (imp_globals @ own_globals) in
  (* Memories and tables. *)
  let own_mems = List.map Memory.create m.memories in
  let rmemories = Array.of_list (imp_mems @ own_mems) in
  let own_tables =
    List.map (fun (l : limits) -> (Array.make l.min None : cfuncinst option array)) m.tables
  in
  let rtables = Array.of_list (imp_tables @ own_tables) in
  let inst =
    { cfuncs; rmemories; rtables; rglobals; rtypes = type_arr; rexports = [] }
  in
  (* Compile the bodies. *)
  let get_cfunc idx = cfuncs.(idx) in
  List.iteri
    (fun own_idx (f : func) ->
      let shell = List.nth own_cfuncs own_idx in
      let ft = shell.cftype in
      let ctx =
        {
          types = type_arr;
          func_types;
          globals_t;
          locals = shell.local_types;
          results = ft.results;
          stack = [];
          height = 0;
          max_height = List.length ft.results;
          frames = [ { entry_height = 0; label_types = ft.results; end_types = ft.results } ];
          fuel;
        }
      in
      let body_code = compile_seq ctx get_cfunc f.body in
      let body_code =
        if fuel then fun r ->
          Instance.Fuel.consume ();
          body_code r
        else body_code
      in
      (* Mutate the shell in place so every call site captured during
         compilation sees the compiled body and register-file sizes. *)
      shell.body <- body_code;
      shell.n_ireg <- ctx.max_height;
      shell.n_lreg <- ctx.max_height;
      shell.n_freg <- ctx.max_height)
    m.funcs;
  (* Element segments. *)
  List.iter
    (fun e ->
      let offset =
        match eval_const imp_globals e.eoffset with
        | VI32 v -> Int32.to_int v land 0xffffffff
        | VI64 _ | VF32 _ | VF64 _ -> Instance.link_fail "element offset must be i32"
      in
      let table = rtables.(e.etable) in
      if offset + List.length e.einit > Array.length table then
        Instance.link_fail "element segment out of bounds";
      List.iteri (fun i fidx -> table.(offset + i) <- Some cfuncs.(fidx)) e.einit)
    m.elems;
  (* Data segments. *)
  List.iter
    (fun d ->
      let offset =
        match eval_const imp_globals d.doffset with
        | VI32 v -> Int32.to_int v land 0xffffffff
        | VI64 _ | VF32 _ | VF64 _ -> Instance.link_fail "data offset must be i32"
      in
      let mem = rmemories.(d.dmem) in
      if offset + String.length d.dinit > Memory.size_bytes mem then
        Instance.link_fail "data segment out of bounds";
      Memory.store_string mem offset d.dinit)
    m.datas;
  (* Exports. *)
  inst.rexports <-
    List.map
      (fun e ->
        let ext =
          match e.edesc with
          | ExportFunc i -> RFunc cfuncs.(i)
          | ExportMemory i -> RMemory rmemories.(i)
          | ExportGlobal i -> RGlobal rglobals.(i)
          | ExportTable i -> RTable rtables.(i)
        in
        (e.exp_name, ext))
      m.exports;
  inst

(* ------------------------------------------------------------------ *)
(* Invocation *)

(** Call a compiled or host function with boxed values. *)
let invoke_funcinst (inst : rinstance) (fi : cfuncinst) (args : value list) : value list =
  let ft = type_of_cfuncinst fi in
  if List.length args <> List.length ft.params then raise (Trap "invoke: wrong argument count");
  List.iter2
    (fun v t ->
      if not (valtype_equal (type_of_value v) t) then
        raise (Trap "invoke: argument type mismatch"))
    args ft.params;
  match fi with
  | CHost { impl; _ } -> impl (Array.of_list args)
  | CWasm f ->
    let r = make_rt inst f in
    List.iteri
      (fun i v ->
        match v with
        | VI32 x -> r.li.(i) <- Int32.to_int x
        | VI64 x -> r.ll.(i) <- x
        | VF32 x | VF64 x -> r.lf.(i) <- x)
      args;
    (try f.body r with Ret_exn -> ());
    List.mapi (fun i t -> read_slot r t i) ft.results

let export_func (inst : rinstance) name =
  match List.assoc_opt name inst.rexports with
  | Some (RFunc f) -> Some f
  | Some (RMemory _ | RGlobal _ | RTable _) | None -> None

let export_memory (inst : rinstance) name =
  match List.assoc_opt name inst.rexports with
  | Some (RMemory m) -> Some m
  | Some (RFunc _ | RGlobal _ | RTable _) | None -> None

(** Invoke an exported function by name. Raises [Not_found] if the
    export is missing or not a function. *)
let invoke (inst : rinstance) name args =
  match export_func inst name with
  | Some f -> invoke_funcinst inst f args
  | None -> raise Not_found

(** Run the module's start function, if any. *)
let run_start (inst : rinstance) (m : module_) =
  match m.start with
  | None -> ()
  | Some f -> ignore (invoke_funcinst inst inst.cfuncs.(f) [])

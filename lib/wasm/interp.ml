(** A direct tree-walking interpreter over the structured AST.

    This is WaTZ's "interpreted" execution mode: no preprocessing of the
    bytecode, list-based operand stack, branch resolution by unwinding —
    simple and slow, exactly the trade-off described in §III
    ("Interpreted is the simplest yet slowest"). The AOT tier
    ({!Aot}) runs the same modules roughly an order of magnitude
    faster. *)

open Types
open Ast
open Instance

exception Branch of int * value list
(** Carries the full operand stack at the branch point; the target
    frame keeps only as many values as its arity. *)

exception Return_exn of value list

let take n stack =
  (* The top [n] values of [stack], still in stack order (top first). *)
  let rec go n acc = function
    | _ when n = 0 -> List.rev acc
    | [] -> raise (Trap "value stack underflow")
    | v :: rest -> go (n - 1) (v :: acc) rest
  in
  go n [] stack

type frame = { locals : value array; inst : Instance.t }

let i32 = function VI32 v -> v | VI64 _ | VF32 _ | VF64 _ -> raise (Trap "type error: i32")
let i64 = function VI64 v -> v | VI32 _ | VF32 _ | VF64 _ -> raise (Trap "type error: i64")
let f32 = function VF32 v -> v | VI32 _ | VI64 _ | VF64 _ -> raise (Trap "type error: f32")
let f64 = function VF64 v -> v | VI32 _ | VI64 _ | VF32 _ -> raise (Trap "type error: f64")

let bool_to_i32 b = if b then 1l else 0l

let eval_iunop ty op v =
  match ty with
  | I32 ->
    let x = i32 v in
    VI32 (match op with Clz -> Numerics.I32_ops.clz x | Ctz -> Numerics.I32_ops.ctz x | Popcnt -> Numerics.I32_ops.popcnt x)
  | I64 ->
    let x = i64 v in
    VI64 (match op with Clz -> Numerics.I64_ops.clz x | Ctz -> Numerics.I64_ops.ctz x | Popcnt -> Numerics.I64_ops.popcnt x)
  | F32 | F64 -> raise (Trap "iunop on float")

let eval_ibinop ty op a b =
  match ty with
  | I32 ->
    let x = i32 a and y = i32 b in
    let open Numerics.I32_ops in
    VI32
      (match op with
      | Add -> Int32.add x y
      | Sub -> Int32.sub x y
      | Mul -> Int32.mul x y
      | DivS -> div_s x y
      | DivU -> div_u x y
      | RemS -> rem_s x y
      | RemU -> rem_u x y
      | And -> Int32.logand x y
      | Or -> Int32.logor x y
      | Xor -> Int32.logxor x y
      | Shl -> shl x y
      | ShrS -> shr_s x y
      | ShrU -> shr_u x y
      | Rotl -> rotl x y
      | Rotr -> rotr x y)
  | I64 ->
    let x = i64 a and y = i64 b in
    let open Numerics.I64_ops in
    VI64
      (match op with
      | Add -> Int64.add x y
      | Sub -> Int64.sub x y
      | Mul -> Int64.mul x y
      | DivS -> div_s x y
      | DivU -> div_u x y
      | RemS -> rem_s x y
      | RemU -> rem_u x y
      | And -> Int64.logand x y
      | Or -> Int64.logor x y
      | Xor -> Int64.logxor x y
      | Shl -> shl x y
      | ShrS -> shr_s x y
      | ShrU -> shr_u x y
      | Rotl -> rotl x y
      | Rotr -> rotr x y)
  | F32 | F64 -> raise (Trap "ibinop on float")

let eval_irelop ty op a b =
  let open Numerics in
  match ty with
  | I32 ->
    let x = i32 a and y = i32 b in
    bool_to_i32
      (match op with
      | Eq -> Int32.equal x y
      | Ne -> not (Int32.equal x y)
      | LtS -> Int32.compare x y < 0
      | LtU -> I32_ops.lt_u x y
      | GtS -> Int32.compare x y > 0
      | GtU -> I32_ops.gt_u x y
      | LeS -> Int32.compare x y <= 0
      | LeU -> I32_ops.le_u x y
      | GeS -> Int32.compare x y >= 0
      | GeU -> I32_ops.ge_u x y)
  | I64 ->
    let x = i64 a and y = i64 b in
    bool_to_i32
      (match op with
      | Eq -> Int64.equal x y
      | Ne -> not (Int64.equal x y)
      | LtS -> Int64.compare x y < 0
      | LtU -> I64_ops.lt_u x y
      | GtS -> Int64.compare x y > 0
      | GtU -> I64_ops.gt_u x y
      | LeS -> Int64.compare x y <= 0
      | LeU -> I64_ops.le_u x y
      | GeS -> Int64.compare x y >= 0
      | GeU -> I64_ops.ge_u x y)
  | F32 | F64 -> raise (Trap "irelop on float")

let eval_funop ty op v =
  let x = match ty with F32 -> f32 v | F64 -> f64 v | I32 | I64 -> raise (Trap "funop on int") in
  let r =
    match op with
    | Abs -> Float.abs x
    | Neg -> -.x
    | Ceil -> Float.ceil x
    | Floor -> Float.floor x
    | Trunc -> Float.trunc x
    | Nearest -> Numerics.f_nearest x
    | Sqrt -> Float.sqrt x
  in
  match ty with
  | F32 -> VF32 (Numerics.to_f32 r)
  | F64 -> VF64 r
  | I32 | I64 -> assert false

let eval_fbinop ty op a b =
  let x, y =
    match ty with
    | F32 -> (f32 a, f32 b)
    | F64 -> (f64 a, f64 b)
    | I32 | I64 -> raise (Trap "fbinop on int")
  in
  let r =
    match op with
    | Fadd -> x +. y
    | Fsub -> x -. y
    | Fmul -> x *. y
    | Fdiv -> x /. y
    | Fmin -> Numerics.f_min x y
    | Fmax -> Numerics.f_max x y
    | Copysign -> Float.copy_sign x y
  in
  match ty with
  | F32 -> VF32 (Numerics.to_f32 r)
  | F64 -> VF64 r
  | I32 | I64 -> assert false

let eval_frelop ty op a b =
  let x, y =
    match ty with
    | F32 -> (f32 a, f32 b)
    | F64 -> (f64 a, f64 b)
    | I32 | I64 -> raise (Trap "frelop on int")
  in
  bool_to_i32
    (match op with
    | Feq -> x = y
    | Fne -> x <> y
    | Flt -> x < y
    | Fgt -> x > y
    | Fle -> x <= y
    | Fge -> x >= y)

let eval_cvtop op v =
  let open Numerics in
  match op with
  | I32WrapI64 -> VI32 (Int64.to_int32 (i64 v))
  | I32TruncF32S -> VI32 (trunc_to_i32_s (f32 v))
  | I32TruncF32U -> VI32 (trunc_to_i32_u (f32 v))
  | I32TruncF64S -> VI32 (trunc_to_i32_s (f64 v))
  | I32TruncF64U -> VI32 (trunc_to_i32_u (f64 v))
  | I64ExtendI32S -> VI64 (Int64.of_int32 (i32 v))
  | I64ExtendI32U -> VI64 (Int64.logand (Int64.of_int32 (i32 v)) 0xffffffffL)
  | I64TruncF32S -> VI64 (trunc_to_i64_s (f32 v))
  | I64TruncF32U -> VI64 (trunc_to_i64_u (f32 v))
  | I64TruncF64S -> VI64 (trunc_to_i64_s (f64 v))
  | I64TruncF64U -> VI64 (trunc_to_i64_u (f64 v))
  | F32ConvertI32S -> VF32 (to_f32 (Int32.to_float (i32 v)))
  | F32ConvertI32U -> VF32 (to_f32 (u32_to_float (i32 v)))
  | F32ConvertI64S -> VF32 (to_f32 (Int64.to_float (i64 v)))
  | F32ConvertI64U -> VF32 (to_f32 (u64_to_float (i64 v)))
  | F32DemoteF64 -> VF32 (to_f32 (f64 v))
  | F64ConvertI32S -> VF64 (Int32.to_float (i32 v))
  | F64ConvertI32U -> VF64 (u32_to_float (i32 v))
  | F64ConvertI64S -> VF64 (Int64.to_float (i64 v))
  | F64ConvertI64U -> VF64 (u64_to_float (i64 v))
  | F64PromoteF32 -> VF64 (f32 v)
  | I32ReinterpretF32 -> VI32 (Int32.bits_of_float (f32 v))
  | I64ReinterpretF64 -> VI64 (Int64.bits_of_float (f64 v))
  | F32ReinterpretI32 -> VF32 (Int32.float_of_bits (i32 v))
  | F64ReinterpretI64 -> VF64 (Int64.float_of_bits (i64 v))

let arity_of_blocktype = function BlockEmpty -> 0 | BlockVal _ -> 1

let rec eval_seq frame stack body =
  List.fold_left (eval_instr frame) stack body

and eval_block frame stack ~label_arity body =
  try eval_seq frame stack body with
  | Branch (0, branch_stack) -> take label_arity branch_stack @ stack_below frame stack
  | Branch (n, branch_stack) -> raise (Branch (n - 1, branch_stack))

and stack_below _frame stack = stack
(* Values below the block are untouched: the block evaluated over
   [stack] and branch restoration keeps them implicitly because
   [eval_block] is always entered with the surrounding stack. *)

and eval_instr frame stack (instr : instr) =
  match instr with
  | Unreachable -> raise (Trap "unreachable executed")
  | Nop -> stack
  | Block (bt, body) -> eval_block frame stack ~label_arity:(arity_of_blocktype bt) body
  | Loop (_, body) ->
    let rec iterate stack =
      Fuel.consume ();
      match eval_seq frame stack body with
      | result -> result
      | exception Branch (0, _) -> iterate stack
      | exception Branch (n, s) -> raise (Branch (n - 1, s))
    in
    iterate stack
  | If (bt, then_, else_) ->
    (match stack with
    | cond :: rest ->
      let body = if Int32.equal (i32 cond) 0l then else_ else then_ in
      eval_block frame rest ~label_arity:(arity_of_blocktype bt) body
    | [] -> raise (Trap "stack underflow"))
  | Br n -> raise (Branch (n, stack))
  | BrIf n ->
    (match stack with
    | cond :: rest -> if Int32.equal (i32 cond) 0l then rest else raise (Branch (n, rest))
    | [] -> raise (Trap "stack underflow"))
  | BrTable (targets, default) ->
    (match stack with
    | cond :: rest ->
      let idx = Int32.to_int (i32 cond) in
      let target =
        if idx >= 0 && idx < List.length targets then List.nth targets idx else default
      in
      raise (Branch (target, rest))
    | [] -> raise (Trap "stack underflow"))
  | Return -> raise (Return_exn stack)
  | Call f -> call_funcinst frame.inst.funcs.(f) stack
  | CallIndirect tidx ->
    (match stack with
    | idx :: rest ->
      let table = frame.inst.tables.(0) in
      let i = Int32.to_int (i32 idx) land 0xffffffff in
      if i >= Array.length table.telems then raise (Trap "undefined element")
      else begin
        match table.telems.(i) with
        | None -> raise (Trap "uninitialized element")
        | Some fi ->
          let expected = List.nth frame.inst.module_.types tidx in
          if not (functype_equal expected (type_of_funcinst fi)) then
            raise (Trap "indirect call type mismatch");
          call_funcinst fi rest
      end
    | [] -> raise (Trap "stack underflow"))
  | Drop -> (match stack with _ :: rest -> rest | [] -> raise (Trap "stack underflow"))
  | Select ->
    (match stack with
    | cond :: v2 :: v1 :: rest ->
      (if Int32.equal (i32 cond) 0l then v2 else v1) :: rest
    | _ -> raise (Trap "stack underflow"))
  | LocalGet i -> frame.locals.(i) :: stack
  | LocalSet i ->
    (match stack with
    | v :: rest ->
      frame.locals.(i) <- v;
      rest
    | [] -> raise (Trap "stack underflow"))
  | LocalTee i ->
    (match stack with
    | v :: _ ->
      frame.locals.(i) <- v;
      stack
    | [] -> raise (Trap "stack underflow"))
  | GlobalGet i -> frame.inst.globals.(i).gvalue :: stack
  | GlobalSet i ->
    (match stack with
    | v :: rest ->
      frame.inst.globals.(i).gvalue <- v;
      rest
    | [] -> raise (Trap "stack underflow"))
  | Load (ty, pack, m) ->
    (match stack with
    | addr :: rest ->
      let mem = memory0 frame.inst in
      let ea = Memory.effective_address (i32 addr) m.offset in
      let v =
        match (ty, pack) with
        | I32, None -> VI32 (Memory.load32 mem ea)
        | I64, None -> VI64 (Memory.load64 mem ea)
        | F32, None -> VF32 (Int32.float_of_bits (Memory.load32 mem ea))
        | F64, None -> VF64 (Int64.float_of_bits (Memory.load64 mem ea))
        | I32, Some (P8, SX) -> VI32 (Int32.of_int (Memory.load8_s mem ea))
        | I32, Some (P8, ZX) -> VI32 (Int32.of_int (Memory.load8_u mem ea))
        | I32, Some (P16, SX) -> VI32 (Int32.of_int (Memory.load16_s mem ea))
        | I32, Some (P16, ZX) -> VI32 (Int32.of_int (Memory.load16_u mem ea))
        | I64, Some (P8, SX) -> VI64 (Int64.of_int (Memory.load8_s mem ea))
        | I64, Some (P8, ZX) -> VI64 (Int64.of_int (Memory.load8_u mem ea))
        | I64, Some (P16, SX) -> VI64 (Int64.of_int (Memory.load16_s mem ea))
        | I64, Some (P16, ZX) -> VI64 (Int64.of_int (Memory.load16_u mem ea))
        | I64, Some (P32, SX) -> VI64 (Int64.of_int32 (Memory.load32 mem ea))
        | I64, Some (P32, ZX) ->
          VI64 (Int64.logand (Int64.of_int32 (Memory.load32 mem ea)) 0xffffffffL)
        | (I32 | F32 | F64), Some (P32, _) | (F32 | F64), Some ((P8 | P16), _) ->
          raise (Trap "invalid load")
      in
      v :: rest
    | [] -> raise (Trap "stack underflow"))
  | Store (ty, pack, m) ->
    (match stack with
    | v :: addr :: rest ->
      let mem = memory0 frame.inst in
      let ea = Memory.effective_address (i32 addr) m.offset in
      (match (ty, pack) with
      | I32, None -> Memory.store32 mem ea (i32 v)
      | I64, None -> Memory.store64 mem ea (i64 v)
      | F32, None -> Memory.store32 mem ea (Int32.bits_of_float (f32 v))
      | F64, None -> Memory.store64 mem ea (Int64.bits_of_float (f64 v))
      | I32, Some P8 -> Memory.store8 mem ea (Int32.to_int (i32 v))
      | I32, Some P16 -> Memory.store16 mem ea (Int32.to_int (i32 v))
      | I64, Some P8 -> Memory.store8 mem ea (Int64.to_int (i64 v) land 0xff)
      | I64, Some P16 -> Memory.store16 mem ea (Int64.to_int (i64 v) land 0xffff)
      | I64, Some P32 -> Memory.store32 mem ea (Int64.to_int32 (i64 v))
      | (I32 | F32 | F64), Some P32 | (F32 | F64), Some (P8 | P16) ->
        raise (Trap "invalid store"));
      rest
    | _ -> raise (Trap "stack underflow"))
  | MemorySize -> VI32 (Int32.of_int (Memory.size_pages (memory0 frame.inst))) :: stack
  | MemoryGrow ->
    (match stack with
    | delta :: rest ->
      let mem = memory0 frame.inst in
      VI32 (Int32.of_int (Memory.grow mem (Int32.to_int (i32 delta)))) :: rest
    | [] -> raise (Trap "stack underflow"))
  | Const v -> v :: stack
  | ITestop ty ->
    (match stack with
    | v :: rest ->
      let zero =
        match ty with
        | I32 -> Int32.equal (i32 v) 0l
        | I64 -> Int64.equal (i64 v) 0L
        | F32 | F64 -> raise (Trap "eqz on float")
      in
      VI32 (bool_to_i32 zero) :: rest
    | [] -> raise (Trap "stack underflow"))
  | IUnop (ty, op) ->
    (match stack with
    | v :: rest -> eval_iunop ty op v :: rest
    | [] -> raise (Trap "stack underflow"))
  | IBinop (ty, op) ->
    (match stack with
    | b :: a :: rest -> eval_ibinop ty op a b :: rest
    | _ -> raise (Trap "stack underflow"))
  | IRelop (ty, op) ->
    (match stack with
    | b :: a :: rest -> VI32 (eval_irelop ty op a b) :: rest
    | _ -> raise (Trap "stack underflow"))
  | FUnop (ty, op) ->
    (match stack with
    | v :: rest -> eval_funop ty op v :: rest
    | [] -> raise (Trap "stack underflow"))
  | FBinop (ty, op) ->
    (match stack with
    | b :: a :: rest -> eval_fbinop ty op a b :: rest
    | _ -> raise (Trap "stack underflow"))
  | FRelop (ty, op) ->
    (match stack with
    | b :: a :: rest -> VI32 (eval_frelop ty op a b) :: rest
    | _ -> raise (Trap "stack underflow"))
  | Cvtop op ->
    (match stack with
    | v :: rest -> eval_cvtop op v :: rest
    | [] -> raise (Trap "stack underflow"))

and call_funcinst fi stack =
  match fi with
  | Host_func { ftype; f; _ } ->
    let n_params = List.length ftype.params in
    let args = Array.of_list (List.rev (take n_params stack)) in
    let rest = drop n_params stack in
    let results = f args in
    List.rev_append results rest
  | Wasm_func { ftype; func; inst } ->
    Fuel.consume ();
    let n_params = List.length ftype.params in
    let args = List.rev (take n_params stack) in
    let rest = drop n_params stack in
    let locals =
      Array.of_list (args @ List.map default_value func.locals)
    in
    let frame = { locals; inst } in
    let arity = List.length ftype.results in
    let results =
      try
        let final_stack =
          try eval_seq frame [] func.body
          with Branch (0, s) -> s
        in
        take arity final_stack
      with Return_exn s -> take arity s
    in
    results @ rest

and drop n stack =
  if n = 0 then stack
  else match stack with [] -> raise (Trap "stack underflow") | _ :: rest -> drop (n - 1) rest

(** Invoke an exported or internal function with boxed arguments. *)
let invoke (fi : funcinst) (args : value list) : value list =
  let ftype = type_of_funcinst fi in
  if List.length args <> List.length ftype.params then
    raise (Trap "invoke: wrong number of arguments");
  List.iter2
    (fun v t ->
      if not (valtype_equal (type_of_value v) t) then raise (Trap "invoke: argument type mismatch"))
    args ftype.params;
  let stack = call_funcinst fi (List.rev args) in
  List.rev (take (List.length ftype.results) stack)

(** Run a module's start function if present. *)
let run_start (inst : Instance.t) =
  match inst.module_.start with
  | None -> ()
  | Some f -> ignore (invoke inst.funcs.(f) [])

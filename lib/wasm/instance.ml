(** Runtime structures: memories, tables, globals, function instances,
    module instantiation and the host-function interface (spec §4).

    Each instantiated module owns its own linear memory — the sandbox
    boundary that lets WaTZ host mutually distrusting applications in
    the single TrustZone secure world. *)

open Types
open Ast

exception Trap = Numerics.Trap
exception Exhaustion of string
exception Link_error of string

let link_fail fmt = Format.kasprintf (fun s -> raise (Link_error s)) fmt

(** Optional execution fuel, for running untrusted modules whose
    termination nothing guarantees (fuzz mutants in the differential
    harness). Metering is off unless the caller is inside
    {!Fuel.with_fuel}; the tiers charge one unit per loop iteration and
    per function entry — coarse, but every unbounded execution must
    cross one of those two edges, so exhaustion is inevitable and,
    because all tiers charge the same edges, tier-identical.

    The budget is a single global cell, not per-instance state: fuel is
    a harness concern and threading it through three execution tiers'
    hot paths would tax the default (unmetered) configuration. The cell
    is domain-local in effect — the fuzz harness is single-domain — and
    [max_int] is the sentinel for "off". *)
module Fuel = struct
  let cell = ref max_int

  let enabled () = !cell <> max_int

  let consume () =
    if !cell <> max_int then begin
      if !cell <= 0 then raise (Exhaustion "fuel exhausted");
      decr cell
    end

  (** Run [f] with a budget of [n] units, restoring the previous budget
      (normally: off) afterwards, whatever [f] does. *)
  let with_fuel n f =
    let saved = !cell in
    cell := n;
    Fun.protect ~finally:(fun () -> cell := saved) f
end

(* ------------------------------------------------------------------ *)
(* Linear memory *)

module Memory = struct
  type t = { mutable data : Bytes.t; max : int option; mutable limit_bytes : int option }

  let create (l : limits) =
    if l.min > max_pages then raise (Exhaustion "memory minimum too large");
    { data = Bytes.make (l.min * page_size) '\000'; max = l.max; limit_bytes = None }

  let size_pages t = Bytes.length t.data / page_size
  let size_bytes t = Bytes.length t.data

  (** [set_limit_bytes t n] caps the memory footprint (the OP-TEE heap
      budget of the enclosing TA); growth beyond it fails as in a
      memory-constrained TEE. *)
  let set_limit_bytes t n = t.limit_bytes <- n

  let grow t delta =
    let current = size_pages t in
    let proposed = current + delta in
    let max_allowed = match t.max with None -> max_pages | Some m -> m in
    let within_tee_budget =
      match t.limit_bytes with None -> true | Some b -> proposed * page_size <= b
    in
    if delta < 0 || proposed > max_allowed || not within_tee_budget then -1
    else begin
      let fresh = Bytes.make (proposed * page_size) '\000' in
      Bytes.blit t.data 0 fresh 0 (Bytes.length t.data);
      t.data <- fresh;
      current
    end

  let check t addr width =
    if addr < 0 || addr + width > Bytes.length t.data then
      raise (Trap "out of bounds memory access")

  let effective_address base offset =
    (Int32.to_int base land 0xffffffff) + offset

  let load8_u t addr =
    check t addr 1;
    Bytes.get_uint8 t.data addr

  let load8_s t addr =
    check t addr 1;
    Bytes.get_int8 t.data addr

  let load16_u t addr =
    check t addr 2;
    Bytes.get_uint16_le t.data addr

  let load16_s t addr =
    check t addr 2;
    Bytes.get_int16_le t.data addr

  let load32 t addr =
    check t addr 4;
    Bytes.get_int32_le t.data addr

  let load64 t addr =
    check t addr 8;
    Bytes.get_int64_le t.data addr

  let store8 t addr v =
    check t addr 1;
    Bytes.set_uint8 t.data addr (v land 0xff)

  let store16 t addr v =
    check t addr 2;
    Bytes.set_uint16_le t.data addr (v land 0xffff)

  let store32 t addr v =
    check t addr 4;
    Bytes.set_int32_le t.data addr v

  let store64 t addr v =
    check t addr 8;
    Bytes.set_int64_le t.data addr v

  let load_string t addr len =
    check t addr (max len 0);
    Bytes.sub_string t.data addr len

  let store_string t addr s =
    check t addr (String.length s);
    Bytes.blit_string s 0 t.data addr (String.length s)
end

(* ------------------------------------------------------------------ *)
(* Instances *)

type funcinst =
  | Wasm_func of { ftype : functype; func : func; inst : t }
  | Host_func of { ftype : functype; name : string; f : value array -> value list }

and globalinst = { gity : globaltype; mutable gvalue : value }

and tableinst = { mutable telems : funcinst option array; tmax : int option }

and extern =
  | Extern_func of funcinst
  | Extern_table of tableinst
  | Extern_memory of Memory.t
  | Extern_global of globalinst

and t = {
  module_ : module_;
  funcs : funcinst array;
  tables : tableinst array;
  memories : Memory.t array;
  globals : globalinst array;
  mutable exports : (string * extern) list;
}

let type_of_funcinst = function Wasm_func { ftype; _ } -> ftype | Host_func { ftype; _ } -> ftype

let host_func ~name ~params ~results f =
  Host_func { ftype = { params; results }; name; f }

(** Import resolution: [imports] maps (module, name) to externs. *)
type import_map = (string * string, extern) Hashtbl.t

let import_map_of_list bindings =
  let tbl = Hashtbl.create (List.length bindings) in
  List.iter (fun (m, n, ext) -> Hashtbl.replace tbl (m, n) ext) bindings;
  tbl

let eval_const inst = function
  | [ Const v ] -> v
  | [ GlobalGet i ] -> inst.globals.(i).gvalue
  | _ -> raise (Link_error "unsupported constant expression")

(** [instantiate ~imports m] validates nothing by itself — call
    {!Validate.validate} first — and performs allocation, segment
    initialisation and the start-function call. *)
let instantiate ?(imports : import_map = Hashtbl.create 0) (m : module_) =
  let lookup (imp : import) =
    match Hashtbl.find_opt imports (imp.imp_module, imp.imp_name) with
    | Some ext -> ext
    | None -> link_fail "unknown import %s.%s" imp.imp_module imp.imp_name
  in
  let imported_funcs, imported_tables, imported_mems, imported_globals =
    List.fold_left
      (fun (fs, ts, ms, gs) imp ->
        match (imp.idesc, lookup imp) with
        | ImportFunc tidx, Extern_func f ->
          let expected = List.nth m.types tidx in
          if not (functype_equal expected (type_of_funcinst f)) then
            link_fail "import %s.%s: signature mismatch (want %s, got %s)" imp.imp_module
              imp.imp_name
              (string_of_functype expected)
              (string_of_functype (type_of_funcinst f));
          (f :: fs, ts, ms, gs)
        | ImportTable _, Extern_table t -> (fs, t :: ts, ms, gs)
        | ImportMemory l, Extern_memory mem ->
          if Memory.size_pages mem < l.min then
            link_fail "import %s.%s: memory too small" imp.imp_module imp.imp_name;
          (fs, ts, mem :: ms, gs)
        | ImportGlobal g, Extern_global gi ->
          if not (valtype_equal g.content (type_of_value gi.gvalue)) then
            link_fail "import %s.%s: global type mismatch" imp.imp_module imp.imp_name;
          (fs, ts, ms, gi :: gs)
        | (ImportFunc _ | ImportTable _ | ImportMemory _ | ImportGlobal _), _ ->
          link_fail "import %s.%s: kind mismatch" imp.imp_module imp.imp_name)
      ([], [], [], []) m.imports
  in
  let imported_funcs = List.rev imported_funcs in
  let imported_tables = List.rev imported_tables in
  let imported_mems = List.rev imported_mems in
  let imported_globals = List.rev imported_globals in
  let own_tables =
    List.map
      (fun (l : limits) -> { telems = Array.make l.min None; tmax = l.max })
      m.tables
  in
  let own_memories = List.map Memory.create m.memories in
  let inst =
    {
      module_ = m;
      funcs = Array.of_list imported_funcs;
      tables = Array.of_list (imported_tables @ own_tables);
      memories = Array.of_list (imported_mems @ own_memories);
      globals = Array.of_list imported_globals;
      exports = [];
    }
  in
  (* Own globals need [inst] for const-expr evaluation over imported
     globals; own functions close over [inst]. Rebuild the arrays. *)
  let own_globals =
    List.map (fun g -> { gity = g.gtype; gvalue = eval_const inst g.ginit }) m.globals
  in
  let inst = { inst with globals = Array.of_list (imported_globals @ own_globals) } in
  let own_funcs =
    List.map (fun f -> Wasm_func { ftype = List.nth m.types f.ftype; func = f; inst }) m.funcs
  in
  let inst = { inst with funcs = Array.of_list (imported_funcs @ own_funcs) } in
  (* Patch closures: Wasm_func above captured the previous [inst]
     record; rebuild functions against the final record instead. *)
  let final =
    { inst with funcs = Array.copy inst.funcs }
  in
  Array.iteri
    (fun i fi ->
      match fi with
      | Wasm_func w -> final.funcs.(i) <- Wasm_func { w with inst = final }
      | Host_func _ -> ())
    inst.funcs;
  let inst = final in
  (* Element segments. *)
  List.iter
    (fun e ->
      let offset =
        match eval_const inst e.eoffset with
        | VI32 v -> Int32.to_int v land 0xffffffff
        | VI64 _ | VF32 _ | VF64 _ -> raise (Link_error "element offset must be i32")
      in
      let table = inst.tables.(e.etable) in
      if offset + List.length e.einit > Array.length table.telems then
        raise (Link_error "element segment out of bounds");
      List.iteri (fun i f -> table.telems.(offset + i) <- Some inst.funcs.(f)) e.einit)
    m.elems;
  (* Data segments. *)
  List.iter
    (fun d ->
      let offset =
        match eval_const inst d.doffset with
        | VI32 v -> Int32.to_int v land 0xffffffff
        | VI64 _ | VF32 _ | VF64 _ -> raise (Link_error "data offset must be i32")
      in
      let mem = inst.memories.(d.dmem) in
      if offset + String.length d.dinit > Memory.size_bytes mem then
        raise (Link_error "data segment out of bounds");
      Memory.store_string mem offset d.dinit)
    m.datas;
  (* Exports. *)
  inst.exports <-
    List.map
      (fun e ->
        let ext =
          match e.edesc with
          | ExportFunc i -> Extern_func inst.funcs.(i)
          | ExportTable i -> Extern_table inst.tables.(i)
          | ExportMemory i -> Extern_memory inst.memories.(i)
          | ExportGlobal i -> Extern_global inst.globals.(i)
        in
        (e.exp_name, ext))
      m.exports;
  inst

let export_func inst name =
  match List.assoc_opt name inst.exports with
  | Some (Extern_func f) -> Some f
  | Some (Extern_table _ | Extern_memory _ | Extern_global _) | None -> None

let export_memory inst name =
  match List.assoc_opt name inst.exports with
  | Some (Extern_memory m) -> Some m
  | Some (Extern_func _ | Extern_table _ | Extern_global _) | None -> None

let memory0 inst =
  if Array.length inst.memories = 0 then raise (Trap "no memory") else inst.memories.(0)
